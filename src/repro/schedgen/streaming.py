"""Streaming (out-of-core) schedule ingestion.

The monolithic ingestion paths materialise everything before the first
array is built: :func:`repro.trace.format.load_trace` reads the whole file
into one string and one :class:`~repro.trace.records.TraceRecord` object per
call, and :func:`repro.schedgen.goal.load_goal` keeps every ``rank`` block
staged until its closing brace.  Both are O(schedule) in peak memory, which
caps the rank counts that can even *enter* the pipeline.

This module provides streaming twins that hold only O(chunk) transient
state plus the accumulated columns — and spill those columns to disk-backed
buffers once they exceed a threshold, so the resident footprint stays
bounded:

:func:`batches_from_trace_chunked`
    parses a trace file in fixed-size record blocks straight into
    :class:`~repro.schedgen.columnar.RankOpBatch` columns (no ``Trace``, no
    per-record objects), carrying the compute-gap state across block
    boundaries so the produced columns are **bit-identical** to
    ``batches_from_trace(load_trace(...))``.  Completed column chunks are
    appended to a spill accumulator that switches to buffered file writes
    past ``spill_threshold_bytes`` and re-opens the result as a read-only
    ``np.memmap`` — buffered writes land in the page cache, not the process
    RSS, which is what keeps ingestion peak memory flat.

:func:`load_goal_chunked`
    parses a GOAL file line by line, flushing each ``rank`` block's staging
    columns through the bulk builder APIs every ``chunk_size`` statements
    instead of at the closing brace.  Because a block's vertices occupy a
    contiguous id range, every local label maps to its absolute vertex id at
    parse time, so partial flushes preserve the vertex *and* edge emission
    order exactly — the resulting graph is bit-identical (same
    ``content_digest()``) to :func:`~repro.schedgen.goal.load_goal`.

Validation that needs global knowledge (peer ranges against ``nranks``,
cross-rank collective agreement) is deferred to the builder, which already
performs it; per-record checks (timestamps, request lifecycle) run
streaming with the same error messages as the monolithic readers.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import Iterator, Sequence, TextIO

import numpy as np

from ..trace.format import _HEADER, _INT_FIELDS, TraceFormatError, _check_meta_key, _unescape_meta_value
from ..trace.records import COLLECTIVE_OPS, MPI_OP_CODE, MPIOp, P2P_OPS
from .columnar import (
    _COLLECTIVE_CODES,
    _C_COMPUTE,
    _FINALIZE_CODE,
    _MPI_CODE_TO_OP,
    _SKIP_CODES,
    RankOpBatch,
)
from .goal import _CALC_RE, _RECV_RE, _REQ_RE, _SEND_RE, _NS_PER_US, GoalFormatError
from .graph import ExecutionGraph, GraphBuilder, VertexKind

__all__ = [
    "ChunkedBatches",
    "batches_from_trace_chunked",
    "load_goal_chunked",
    "DEFAULT_CHUNK_RECORDS",
    "DEFAULT_SPILL_THRESHOLD_BYTES",
]

#: records per parse block when ``chunk_size="auto"``
DEFAULT_CHUNK_RECORDS = 65536

#: accumulated column bytes after which the spill accumulator switches to
#: buffered file writes (when a spill directory is configured)
DEFAULT_SPILL_THRESHOLD_BYTES = 64 << 20


def resolve_chunk_size(chunk_size: int | str | None) -> int:
    """``"auto"``/``None`` → :data:`DEFAULT_CHUNK_RECORDS`, else the value."""
    if chunk_size is None or chunk_size == "auto":
        return DEFAULT_CHUNK_RECORDS
    size = int(chunk_size)
    if size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {size}")
    return size


# ---------------------------------------------------------------------------
# spill accumulator
# ---------------------------------------------------------------------------

#: RankOpBatch column names and dtypes, in batch-construction order
_BATCH_COLUMNS: tuple[tuple[str, type], ...] = (
    ("kind", np.int16),
    ("cost", np.float64),
    ("peer", np.int64),
    ("size", np.int64),
    ("tag", np.int64),
    ("root", np.int64),
    ("request", np.int64),
    ("recv_peer", np.int64),
    ("recv_size", np.int64),
    ("recv_tag", np.int64),
)


class _ColumnSpill:
    """Append-only accumulator for the batch columns, with disk spill.

    Chunks accumulate in RAM until their total size crosses the threshold;
    then every pending chunk is appended to one binary file per column with
    buffered ``write()`` calls (dirtying the page cache, not this process's
    resident set) and :meth:`finalize` re-opens the files as read-only
    ``np.memmap`` views.  Without a spill directory the chunks are simply
    concatenated in RAM.
    """

    def __init__(self, spill_dir: str | None, threshold_bytes: int) -> None:
        self._dir = spill_dir
        self._threshold = threshold_bytes
        self._chunks: dict[str, list[np.ndarray]] = {n: [] for n, _ in _BATCH_COLUMNS}
        self._files: dict[str, object] | None = None
        self._ram_bytes = 0
        self.rows = 0
        self.spilled = False

    def append(self, chunk: dict[str, np.ndarray]) -> None:
        self.rows += len(chunk["kind"])
        for name, _ in _BATCH_COLUMNS:
            column = chunk[name]
            self._chunks[name].append(column)
            self._ram_bytes += column.nbytes
        if self._dir is not None and self._ram_bytes > self._threshold:
            self._spill_pending()

    def _path(self, name: str) -> str:
        return os.path.join(self._dir, f"batch-{name}.bin")

    def _spill_pending(self) -> None:
        if self._files is None:
            self._files = {
                name: open(self._path(name), "wb") for name, _ in _BATCH_COLUMNS
            }
            self.spilled = True
        for name, _ in _BATCH_COLUMNS:
            handle = self._files[name]
            for column in self._chunks[name]:
                handle.write(memoryview(column))
            self._chunks[name].clear()
        self._ram_bytes = 0

    def finalize(self) -> dict[str, np.ndarray]:
        if self._files is not None:
            self._spill_pending()
            columns: dict[str, np.ndarray] = {}
            for name, dtype in _BATCH_COLUMNS:
                self._files[name].close()
                columns[name] = (
                    np.memmap(self._path(name), dtype=dtype, mode="r",
                              shape=(self.rows,))
                    if self.rows
                    else np.empty(0, dtype=dtype)
                )
            self._files = None
            return columns
        columns = {}
        for name, dtype in _BATCH_COLUMNS:
            chunks = self._chunks[name]
            if not chunks:
                columns[name] = np.empty(0, dtype=dtype)
            elif len(chunks) == 1:
                columns[name] = chunks[0]
            else:
                columns[name] = np.concatenate(chunks)
            self._chunks[name] = []
        return columns


class ChunkedBatches(Sequence):
    """Per-rank :class:`RankOpBatch` views over one set of spillable columns.

    The streaming counterpart of the ``list[RankOpBatch]`` returned by
    :func:`~repro.schedgen.columnar.batches_from_trace`: all ranks share ten
    concatenated columns (possibly read-only memmaps) plus per-rank row
    spans, and ``batches[rank]`` materialises a lightweight view-backed
    batch on demand — no per-rank array objects are held alive, which
    matters at million-rank scale.  Satisfies the access pattern of
    ``_populate_builder`` (``len``, iteration, repeated indexing) and of
    :class:`~repro.schedgen.columnar.ScheduleBatches`.
    """

    def __init__(
        self,
        columns: dict[str, np.ndarray],
        starts: np.ndarray,
        stops: np.ndarray,
        waitall_by_rank: dict[int, dict[int, tuple[int, ...]]],
        meta: dict[str, str],
        *,
        spilled: bool = False,
    ) -> None:
        self._columns = columns
        self._starts = starts
        self._stops = stops
        self._waitall = waitall_by_rank
        self.meta = meta
        self.spilled = spilled

    @property
    def nranks(self) -> int:
        return len(self._starts)

    @property
    def num_rows(self) -> int:
        return len(self._columns["kind"])

    def __len__(self) -> int:
        return self.nranks

    def __getitem__(self, rank: int) -> RankOpBatch:
        if not isinstance(rank, (int, np.integer)):
            raise TypeError("ChunkedBatches supports integer indexing only")
        if rank < 0:
            rank += self.nranks
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range [0, {self.nranks})")
        lo = int(self._starts[rank])
        hi = int(self._stops[rank])
        requests: list[tuple[int, ...]] = [()] * (hi - lo)
        for local_row, handles in self._waitall.get(int(rank), {}).items():
            requests[local_row] = handles
        span = slice(lo, hi)
        columns = self._columns
        return RankOpBatch(
            kind=columns["kind"][span],
            cost=columns["cost"][span],
            peer=columns["peer"][span],
            size=columns["size"][span],
            tag=columns["tag"][span],
            root=columns["root"][span],
            request=columns["request"][span],
            recv_peer=columns["recv_peer"][span],
            recv_size=columns["recv_size"][span],
            recv_tag=columns["recv_tag"][span],
            requests=requests,
        )

    def __iter__(self) -> Iterator[RankOpBatch]:
        for rank in range(self.nranks):
            yield self[rank]

    def close(self) -> None:
        """Drop the column references (releasing any memmap views)."""
        self._columns = {name: np.empty(0, dtype=dtype) for name, dtype in _BATCH_COLUMNS}
        self._starts = np.zeros(0, dtype=np.int64)
        self._stops = np.zeros(0, dtype=np.int64)
        self._waitall = {}


# ---------------------------------------------------------------------------
# streaming trace ingestion
# ---------------------------------------------------------------------------

_OP_NAME_TO_CODE = {op.value: MPI_OP_CODE[op] for op in MPIOp}
_TRACE_OPS = tuple(MPIOp)
_TRACE_P2P = np.zeros(len(MPIOp), dtype=bool)
for _op in P2P_OPS:
    _TRACE_P2P[MPI_OP_CODE[_op]] = True
_TRACE_COLLECTIVE = np.zeros(len(MPIOp), dtype=bool)
for _op in COLLECTIVE_OPS:
    _TRACE_COLLECTIVE[MPI_OP_CODE[_op]] = True
_CODE_SENDRECV = MPI_OP_CODE[MPIOp.SENDRECV]
_CODE_ISEND = MPI_OP_CODE[MPIOp.ISEND]
_CODE_IRECV = MPI_OP_CODE[MPIOp.IRECV]
_CODE_WAIT = MPI_OP_CODE[MPIOp.WAIT]
_CODE_WAITALL = MPI_OP_CODE[MPIOp.WAITALL]


class _TraceChunk:
    """One parse block of raw trace records (Python-list staging)."""

    __slots__ = (
        "lineno", "code", "tstart", "tend", "peer", "size", "tag", "comm_size",
        "request", "recv_peer", "recv_size", "recv_tag", "waitall",
    )

    def __init__(self) -> None:
        self.lineno: list[int] = []
        self.code: list[int] = []
        self.tstart: list[float] = []
        self.tend: list[float] = []
        self.peer: list[int] = []
        self.size: list[int] = []
        self.tag: list[int] = []
        self.comm_size: list[int] = []
        self.request: list[int] = []
        self.recv_peer: list[int] = []
        self.recv_size: list[int] = []
        self.recv_tag: list[int] = []
        self.waitall: dict[int, tuple[int, ...]] = {}

    def __len__(self) -> int:
        return len(self.code)


class _RankIngestState:
    """Carried state of the rank currently being parsed.

    ``last_tend`` tracks the most recently *parsed* record (for the
    monotonicity check); ``carry`` tracks the end time of the last record of
    the previously *flushed* block (the ``prev_end[0]`` of the next block's
    gap computation) and starts at ``inf`` so the rank's first record never
    infers compute — exactly the monolithic initialisation."""

    __slots__ = ("rank", "last_tend", "has_records", "carry", "pending", "row_start")

    def __init__(self, rank: int, row_start: int) -> None:
        self.rank = rank
        self.last_tend = 0.0
        self.has_records = False
        self.carry = float("inf")
        self.pending: set[int] = set()
        self.row_start = row_start


def batches_from_trace_chunked(
    source: str | Path | TextIO,
    *,
    min_compute: float = 0.0,
    chunk_size: int | str | None = "auto",
    spill_dir: str | os.PathLike | None = None,
    spill_threshold_bytes: int = DEFAULT_SPILL_THRESHOLD_BYTES,
) -> ChunkedBatches:
    """Stream a trace file into per-rank op batches with bounded memory.

    Produces columns bit-identical to
    ``batches_from_trace(load_trace(source), min_compute=min_compute)`` —
    the compute-gap inference is elementwise with one carried value (the
    previous record's end time), so splitting the stream into blocks cannot
    change any produced byte.  ``spill_dir`` enables the disk spill (the
    caller owns the directory and must keep it alive while the returned
    batches are in use); ``chunk_size`` is the records-per-block knob
    (``"auto"`` → :data:`DEFAULT_CHUNK_RECORDS`).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return batches_from_trace_chunked(
                handle, min_compute=min_compute, chunk_size=chunk_size,
                spill_dir=spill_dir, spill_threshold_bytes=spill_threshold_bytes,
            )
    chunk_records = resolve_chunk_size(chunk_size)
    spill = _ColumnSpill(
        os.fspath(spill_dir) if spill_dir is not None else None,
        int(spill_threshold_bytes),
    )

    meta: dict[str, str] = {}
    spans: dict[int, tuple[int, int]] = {}
    waitall_by_rank: dict[int, dict[int, tuple[int, ...]]] = {}
    state: _RankIngestState | None = None
    chunk = _TraceChunk()
    rows_emitted = 0

    def flush_chunk() -> None:
        nonlocal rows_emitted, chunk
        if not chunk.code or state is None:
            chunk = _TraceChunk()
            return
        mapped_chunk, waitall_rows = _map_trace_chunk(chunk, state, min_compute)
        if waitall_rows:
            per_rank = waitall_by_rank.setdefault(state.rank, {})
            for slot, handles in waitall_rows:
                per_rank[rows_emitted + slot - state.row_start] = handles
        rows_emitted += len(mapped_chunk["kind"])
        spill.append(mapped_chunk)
        chunk = _TraceChunk()

    def finish_rank() -> None:
        flush_chunk()
        if state is None:
            return
        if state.pending:
            raise ValueError(
                f"rank {state.rank}: requests never completed: "
                f"{sorted(state.pending)}"
            )
        spans[state.rank] = (state.row_start, rows_emitted)

    first_line = True
    lineno = 0
    for raw in handle_lines(source):
        lineno += 1
        if first_line:
            first_line = False
            if raw.strip() != _HEADER:
                raise TraceFormatError(f"missing header {_HEADER!r}")
            continue
        if raw.startswith("# meta "):
            body = raw[len("# meta "):]
            if "=" not in body:
                raise TraceFormatError(f"line {lineno}: malformed meta line {raw!r}")
            key, value = body.split("=", 1)
            _check_meta_key(key)
            if key in meta:
                raise TraceFormatError(f"line {lineno}: duplicate meta key {key!r}")
            meta[key] = _unescape_meta_value(value, lineno)
            continue
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("@rank "):
            try:
                rank = int(line[len("@rank "):])
            except ValueError as exc:
                raise TraceFormatError(f"line {lineno}: bad rank header {line!r}") from exc
            if rank in spans or (state is not None and rank == state.rank):
                raise TraceFormatError(f"line {lineno}: duplicate '@rank {rank}' header")
            if rank < 0:
                raise ValueError(f"rank must be non-negative, got {rank}")
            finish_rank()
            state = _RankIngestState(rank, rows_emitted)
            continue
        if state is None:
            raise TraceFormatError(f"line {lineno}: record before any '@rank' header")
        _parse_record_into(line, lineno, chunk, state)
        if len(chunk) >= chunk_records:
            flush_chunk()
    if first_line:
        raise TraceFormatError(f"missing header {_HEADER!r}")
    finish_rank()

    ranks = sorted(spans)
    for position, rank in enumerate(ranks):
        if rank != position:
            raise ValueError(
                f"rank traces must be ordered by rank; found rank {rank} "
                f"at position {position}"
            )
    nranks = len(ranks)
    starts = np.fromiter((spans[r][0] for r in range(nranks)), dtype=np.int64,
                         count=nranks)
    stops = np.fromiter((spans[r][1] for r in range(nranks)), dtype=np.int64,
                        count=nranks)
    return ChunkedBatches(
        spill.finalize(), starts, stops, waitall_by_rank, meta,
        spilled=spill.spilled,
    )


def handle_lines(handle: TextIO) -> Iterator[str]:
    """Yield the handle's lines without their trailing newline.

    File iteration splits on ``"\\n"`` only (after universal-newline
    translation) — the same boundaries as the monolithic reader's
    ``read().split("\\n")``, so meta values containing exotic line
    separators (NEL, U+2028) survive identically.
    """
    for raw in handle:
        yield raw[:-1] if raw.endswith("\n") else raw


def _parse_record_into(
    line: str, lineno: int, chunk: _TraceChunk, state: _RankIngestState
) -> None:
    """Parse one record line into the chunk columns (no object per record).

    Field semantics are exactly :func:`repro.trace.format._parse_record`;
    request-lifecycle checks run inline (the monolithic path defers them to
    ``Trace.validate()``, so a broken trace may error at a different point,
    never with a different outcome)."""
    fields = line.split(":")
    if len(fields) < 3:
        raise TraceFormatError(
            f"line {lineno}: expected at least op:tstart:tend, got {line!r}"
        )
    code = _OP_NAME_TO_CODE.get(fields[0])
    if code is None:
        raise TraceFormatError(f"line {lineno}: unknown MPI operation {fields[0]!r}")
    try:
        tstart = float(fields[1])
        tend = float(fields[2])
    except ValueError as exc:
        raise TraceFormatError(
            f"line {lineno}: bad timestamps {fields[1]!r}/{fields[2]!r}"
        ) from exc

    peer = -1
    size = 0
    tag = 0
    comm_size = 0
    request = -1
    recv_peer = -1
    recv_size = 0
    recv_tag = 0
    requests: tuple[int, ...] = ()
    for item in fields[3:]:
        if "=" not in item:
            raise TraceFormatError(f"line {lineno}: malformed field {item!r}")
        key, value = item.split("=", 1)
        if key == "requests":
            requests = tuple(int(v) for v in value.split(",") if v)
        elif key == "peer":
            peer = int(value)
        elif key == "size":
            size = int(value)
        elif key == "tag":
            tag = int(value)
        elif key == "comm_size":
            comm_size = int(value)
        elif key == "request":
            request = int(value)
        elif key == "recv_peer":
            recv_peer = int(value)
        elif key == "recv_size":
            recv_size = int(value)
        elif key == "recv_tag":
            recv_tag = int(value)
        elif key in _INT_FIELDS:  # pragma: no cover - keeps the sets in sync
            raise AssertionError(f"unhandled int field {key!r}")
        else:
            raise TraceFormatError(f"line {lineno}: unknown field {key!r}")

    op = _TRACE_OPS[code]
    if tend < tstart:
        raise TraceFormatError(
            f"line {lineno}: {op}: end timestamp {tend} precedes start {tstart}"
        )
    if size < 0 or recv_size < 0:
        raise TraceFormatError(f"line {lineno}: {op}: negative message size")
    if _TRACE_P2P[code] and peer < 0:
        raise TraceFormatError(
            f"line {lineno}: {op}: point-to-point operation requires a peer rank"
        )
    if _TRACE_COLLECTIVE[code] and comm_size < 2:
        raise TraceFormatError(
            f"line {lineno}: {op}: collective requires comm_size >= 2"
        )
    if state.has_records and tstart < state.last_tend - 1e-9:
        raise ValueError(
            f"rank {state.rank}: record {op} starts at {tstart} "
            f"before the previous call ended at {state.last_tend}"
        )
    state.last_tend = tend
    state.has_records = True

    if code == _CODE_ISEND or code == _CODE_IRECV:
        if request < 0:
            raise ValueError(f"rank {state.rank}: {op} without a request handle")
        if request in state.pending:
            raise ValueError(
                f"rank {state.rank}: request {request} reused before wait"
            )
        state.pending.add(request)
    elif code == _CODE_WAIT:
        if request not in state.pending:
            raise ValueError(
                f"rank {state.rank}: MPI_Wait on unknown request {request}"
            )
        state.pending.discard(request)
    elif code == _CODE_WAITALL:
        for handle in requests:
            if handle not in state.pending:
                raise ValueError(
                    f"rank {state.rank}: MPI_Waitall on unknown request {handle}"
                )
            state.pending.discard(handle)
        chunk.waitall[len(chunk.code)] = requests

    chunk.lineno.append(lineno)
    chunk.code.append(code)
    chunk.tstart.append(tstart)
    chunk.tend.append(tend)
    chunk.peer.append(peer)
    chunk.size.append(size)
    chunk.tag.append(tag)
    chunk.comm_size.append(comm_size)
    chunk.request.append(request)
    chunk.recv_peer.append(recv_peer)
    chunk.recv_size.append(recv_size)
    chunk.recv_tag.append(recv_tag)


def _map_trace_chunk(
    chunk: _TraceChunk, state: _RankIngestState, min_compute: float
) -> tuple[dict[str, np.ndarray], list[tuple[int, tuple[int, ...]]]]:
    """Map one raw record block to batch columns (the chunked twin of the
    per-rank body of :func:`~repro.schedgen.columnar.batches_from_trace`).

    The only cross-block state is the previous record's end time: the first
    record of a *rank* sees ``prev_end = inf`` (no gap), the first record of
    a later *block* sees the carried value — elementwise identical to the
    monolithic single-pass arrays."""
    code = np.array(chunk.code, dtype=np.int16)
    tstart = np.array(chunk.tstart, dtype=np.float64)
    tend = np.array(chunk.tend, dtype=np.float64)
    n = len(code)

    skip = np.isin(code, _SKIP_CODES)
    finalize = code == _FINALIZE_CODE
    considered = ~skip
    emit_op = considered & ~finalize

    prev_end = np.empty(n, dtype=np.float64)
    prev_end[0] = state.carry
    prev_end[1:] = tend[:-1]
    gap = tstart - prev_end
    has_compute = considered & (gap > min_compute)
    state.carry = float(tend[-1])

    mapped = _MPI_CODE_TO_OP[code]
    if np.any(emit_op & (mapped < 0)):
        offender = int(code[int(np.argmax(emit_op & (mapped < 0)))])
        raise ValueError(
            f"cannot convert trace record {_TRACE_OPS[offender]} to a program op"
        )

    counts = has_compute.astype(np.int64) + emit_op
    ends = np.cumsum(counts)
    offsets = ends - counts
    total = int(ends[-1])

    rec_peer = np.array(chunk.peer, dtype=np.int64)

    kind = np.empty(total, dtype=np.int16)
    cost = np.zeros(total, dtype=np.float64)
    peer = np.full(total, -1, dtype=np.int64)
    size = np.zeros(total, dtype=np.int64)
    tag = np.zeros(total, dtype=np.int64)
    root = np.zeros(total, dtype=np.int64)
    request = np.full(total, -1, dtype=np.int64)
    recv_peer = np.full(total, -1, dtype=np.int64)
    recv_size = np.zeros(total, dtype=np.int64)
    recv_tag = np.zeros(total, dtype=np.int64)

    compute_pos = offsets[has_compute]
    kind[compute_pos] = _C_COMPUTE
    cost[compute_pos] = gap[has_compute]

    op_pos = offsets[emit_op] + has_compute[emit_op]
    op_mapped = mapped[emit_op]
    is_coll = np.isin(op_mapped, _COLLECTIVE_CODES)
    kind[op_pos] = op_mapped
    peer[op_pos] = np.where(is_coll, -1, rec_peer[emit_op])
    size[op_pos] = np.array(chunk.size, dtype=np.int64)[emit_op]
    tag[op_pos] = np.array(chunk.tag, dtype=np.int64)[emit_op]
    root[op_pos] = np.where(is_coll, np.maximum(rec_peer[emit_op], 0), 0)
    request[op_pos] = np.array(chunk.request, dtype=np.int64)[emit_op]
    recv_peer[op_pos] = np.array(chunk.recv_peer, dtype=np.int64)[emit_op]
    recv_size[op_pos] = np.array(chunk.recv_size, dtype=np.int64)[emit_op]
    recv_tag[op_pos] = np.array(chunk.recv_tag, dtype=np.int64)[emit_op]

    waitall_rows = [
        (int(offsets[index] + has_compute[index]), handles)
        for index, handles in chunk.waitall.items()
    ]

    columns = {
        "kind": kind, "cost": cost, "peer": peer, "size": size, "tag": tag,
        "root": root, "request": request, "recv_peer": recv_peer,
        "recv_size": recv_size, "recv_tag": recv_tag,
    }
    return columns, waitall_rows


# ---------------------------------------------------------------------------
# streaming GOAL ingestion
# ---------------------------------------------------------------------------

class _GoalBlockStage:
    """Chunk-flushed staging of one ``rank { ... }`` block.

    A block's vertices occupy a contiguous id range in emission order, so
    every local label maps to its absolute vertex id the moment the
    statement is parsed — which lets partial flushes (every ``chunk_size``
    staged statements) keep both vertex and dependency emission order
    identical to the at-the-brace flush of the monolithic reader."""

    __slots__ = (
        "builder", "rank", "chunk_size", "next_vid", "local_vid",
        "kind", "cost", "size", "peer", "tag", "dep_src", "dep_dst",
    )

    def __init__(self, builder: GraphBuilder, rank: int, chunk_size: int) -> None:
        self.builder = builder
        self.rank = rank
        self.chunk_size = chunk_size
        self.next_vid = builder.num_vertices
        self.local_vid: dict[int, int] = {}
        self.kind: list[int] = []
        self.cost: list[float] = []
        self.size: list[int] = []
        self.peer: list[int] = []
        self.tag: list[int] = []
        self.dep_src: list[int] = []
        self.dep_dst: list[int] = []

    def add_vertex(self, label_id: int, kind: int, cost: float, size: int,
                   peer: int, tag: int) -> None:
        self.local_vid[label_id] = self.next_vid
        self.next_vid += 1
        self.kind.append(kind)
        self.cost.append(cost)
        self.size.append(size)
        self.peer.append(peer)
        self.tag.append(tag)
        if len(self.kind) >= self.chunk_size:
            self.flush()

    def add_dep(self, src_vid: int, dst_vid: int) -> None:
        self.dep_src.append(src_vid)
        self.dep_dst.append(dst_vid)
        if len(self.dep_src) >= self.chunk_size:
            self.flush()

    def flush(self) -> None:
        # vertices first: staged dependencies may target vertices staged in
        # this same block chunk
        if self.kind:
            self.builder.add_vertices(
                np.array(self.kind, dtype=np.int8),
                self.rank,
                cost=np.array(self.cost, dtype=np.float64),
                size=np.array(self.size, dtype=np.int64),
                peer=np.array(self.peer, dtype=np.int64),
                tag=np.array(self.tag, dtype=np.int64),
            )
            self.kind.clear()
            self.cost.clear()
            self.size.clear()
            self.peer.clear()
            self.tag.clear()
        if self.dep_src:
            self.builder.add_dependencies(
                np.array(self.dep_src, dtype=np.int64),
                np.array(self.dep_dst, dtype=np.int64),
            )
            self.dep_src.clear()
            self.dep_dst.clear()


def load_goal_chunked(
    source: str | Path | TextIO,
    *,
    chunk_size: int | str | None = "auto",
    mmap_dir: str | os.PathLike | None = None,
    validate: bool = True,
) -> ExecutionGraph:
    """Stream a GOAL file into an execution graph with bounded staging.

    Bit-identical to :func:`~repro.schedgen.goal.load_goal` (same
    ``content_digest()``): statements flush through the bulk builder APIs in
    parse order, just every ``chunk_size`` statements instead of per block.
    With ``mmap_dir`` the builder's columns are disk-backed
    (:class:`~repro.schedgen.graph.GraphBuilder`), and the returned graph is
    attached **zero-copy** over them rather than frozen — the caller owns
    ``mmap_dir`` for the graph's lifetime.  ``validate=True`` (default) runs
    the full structural validation including the cycle-detecting frontier
    peel, which untrusted GOAL input should keep."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_goal_chunked(
                handle, chunk_size=chunk_size, mmap_dir=mmap_dir,
                validate=validate,
            )
    from .builder import UnmatchedMessageError
    from .columnar import match_messages

    chunk_statements = resolve_chunk_size(chunk_size)
    lines = handle_lines(source)
    first = next(lines, None)
    if first is None or not first.startswith("num_ranks"):
        raise GoalFormatError("GOAL file must start with 'num_ranks N'")
    try:
        nranks = int(first.split()[1])
    except (IndexError, ValueError) as exc:
        raise GoalFormatError(f"malformed num_ranks line: {first!r}") from exc

    builder = GraphBuilder(nranks=nranks, mmap_dir=mmap_dir)
    stage: _GoalBlockStage | None = None

    calc_kind = int(VertexKind.CALC)
    send_kind = int(VertexKind.SEND)
    recv_kind = int(VertexKind.RECV)

    for lineno, raw in enumerate(lines, start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("rank "):
            if stage is not None:
                raise GoalFormatError(
                    f"line {lineno}: rank {stage.rank} block is not closed"
                )
            if not line.endswith("{"):
                raise GoalFormatError(f"line {lineno}: expected 'rank N {{'")
            try:
                rank = int(line.split()[1])
            except (IndexError, ValueError) as exc:
                raise GoalFormatError(f"line {lineno}: malformed rank header") from exc
            stage = _GoalBlockStage(builder, rank, chunk_statements)
            continue
        if line == "}":
            if stage is not None:
                stage.flush()
            stage = None
            continue
        if stage is None:
            raise GoalFormatError(f"line {lineno}: statement outside a rank block")
        if (m := _CALC_RE.match(line)) is not None:
            stage.add_vertex(int(m.group("id")), calc_kind,
                             int(m.group("cost")) / _NS_PER_US, 0, -1, 0)
        elif (m := _SEND_RE.match(line)) is not None:
            stage.add_vertex(int(m.group("id")), send_kind, 0.0,
                             int(m.group("size")), int(m.group("peer")),
                             int(m.group("tag")))
        elif (m := _RECV_RE.match(line)) is not None:
            stage.add_vertex(int(m.group("id")), recv_kind, 0.0,
                             int(m.group("size")), int(m.group("peer")),
                             int(m.group("tag")))
        elif (m := _REQ_RE.match(line)) is not None:
            src_local, dst_local = int(m.group("src")), int(m.group("dst"))
            if src_local not in stage.local_vid or dst_local not in stage.local_vid:
                raise GoalFormatError(f"line {lineno}: dependency on undefined label")
            stage.add_dep(stage.local_vid[src_local], stage.local_vid[dst_local])
        else:
            raise GoalFormatError(f"line {lineno}: cannot parse {line!r}")

    if stage is not None:
        raise GoalFormatError(f"unterminated rank {stage.rank} block at end of file")

    try:
        match_messages(builder)
    except UnmatchedMessageError as exc:
        raise GoalFormatError(
            f"unmatched send/recv operations in GOAL file: {exc}"
        ) from exc

    nv, ne = builder.num_vertices, builder.num_edges
    columns = {
        "kind": builder._vkind[:nv],
        "rank": builder._vrank[:nv],
        "cost": builder._vcost[:nv],
        "size": builder._vsize[:nv],
        "peer": builder._vpeer[:nv],
        "tag": builder._vtag[:nv],
        "edge_src": builder._esrc[:ne],
        "edge_dst": builder._edst[:ne],
        "edge_kind": builder._ekind[:ne],
    }
    return ExecutionGraph.from_columns(
        nranks, columns, builder._label, validate=validate
    )
