"""``llamp`` command-line interface.

Small front end over the library for the most common workflows:

``llamp analyze``
    build an application skeleton, run the LP analysis and print runtime,
    ``λ_L``, ``ρ_L`` and the 1/2/5 % latency tolerances;
``llamp sweep``
    measured-vs-predicted ΔL sweep (simulator vs LP) with RRMSE;
``llamp curve``
    exact ``T(L)`` / ``λ_L(L)`` curve and critical latencies via the batched
    sweep engine (O(#breakpoints) LP solves, one assembled matrix);
``llamp place``
    sensitivity-guided rank placement (Algorithm 3): refine a process
    mapping with the incremental per-pair LP engine and compare it against
    the block and volume-greedy baselines;
``llamp trace``
    write the liballprof-style trace of an application skeleton;
``llamp goal``
    write the GOAL schedule of an application skeleton;
``llamp cache``
    inspect / clear / warm a content-addressed artifact store
    (:mod:`repro.artifacts`): ``warm APP`` persists the graph, LP and
    ``T(L)`` envelope so later analyses are answered from disk;
``llamp fleet``
    expand an (app × ranks × algorithm × latency × injector) scenario grid
    and run it across the zero-copy shared-memory worker pool
    (:mod:`repro.parallel`), writing per-app shards plus one deterministic
    merged summary;
``llamp ingest``
    stream an on-disk trace or GOAL file through the chunked out-of-core
    readers (:mod:`repro.schedgen.streaming`) and run the LP analysis —
    peak memory stays O(chunk + columns) instead of O(file), with the
    columns optionally spilled to disk-backed buffers (``--mmap-dir``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import numpy as np

from .analysis.validation import run_validation_sweep
from .apps import ALL_APPS
from .core.analyzer import LatencyAnalyzer
from .mpi.tracer import trace_program
from .network.params import CSCS_TESTBED, LogGPSParams
from .schedgen.builder import build_graph
from .schedgen.collectives import CollectiveAlgorithms
from .schedgen.goal import dump_goal
from .schedgen.streaming import DEFAULT_CHUNK_RECORDS
from .trace.format import dump_trace

__all__ = ["main", "build_parser"]


def _params_from_args(args: argparse.Namespace) -> LogGPSParams:
    return CSCS_TESTBED.replace(L=args.latency, o=args.overhead, G=args.gap)


def _app_graph(args: argparse.Namespace, params: LogGPSParams):
    if args.app not in ALL_APPS:
        raise SystemExit(f"unknown application {args.app!r}; choose from {sorted(ALL_APPS)}")
    module = ALL_APPS[args.app]
    algorithms = CollectiveAlgorithms(allreduce=args.allreduce)
    return module.build(
        args.nranks,
        params=params,
        algorithms=algorithms,
        builder_engine=args.builder_engine,
    )


def _app_schedule(args: argparse.Namespace, params: LogGPSParams):
    """The app as a :class:`~repro.schedgen.columnar.ScheduleBatches` spec.

    Used by the analyze-only commands when ``--lp-engine`` is ``auto`` or
    ``fused``: the LP is lowered batches → CSR directly and no frozen graph
    is ever built (digest-compatible with :func:`_app_graph`'s output).
    """
    from .schedgen.builder import ProtocolConfig
    from .schedgen.columnar import ScheduleBatches

    if args.app not in ALL_APPS:
        raise SystemExit(f"unknown application {args.app!r}; choose from {sorted(ALL_APPS)}")
    module = ALL_APPS[args.app]
    return ScheduleBatches.from_program(
        module.program(args.nranks),
        algorithms=CollectiveAlgorithms(allreduce=args.allreduce),
        protocol=ProtocolConfig.from_params(params),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="llamp",
        description="LLAMP reproduction: network latency sensitivity/tolerance analysis",
    )
    parser.add_argument("--latency", type=float, default=CSCS_TESTBED.L,
                        help="base network latency L in µs (default: %(default)s)")
    parser.add_argument("--overhead", type=float, default=CSCS_TESTBED.o,
                        help="per-message CPU overhead o in µs (default: %(default)s)")
    parser.add_argument("--gap", type=float, default=CSCS_TESTBED.G,
                        help="per-byte gap G in µs/byte (default: %(default)s)")
    parser.add_argument("--lp-engine", default="auto",
                        choices=("auto", "symbolic", "compiled", "fused"),
                        help="graph→LP construction engine: the per-vertex symbolic "
                             "sweep, the vectorised compiler, or the fused "
                             "batches→CSR path that never freezes a graph "
                             "(default: %(default)s — fused on analyze-only "
                             "commands, compiled for large graphs elsewhere; "
                             "all engines emit bit-identical LPs)")
    parser.add_argument("--builder-engine", default="auto",
                        choices=("auto", "legacy", "columnar"),
                        help="schedule→graph construction engine: the op-by-op "
                             "reference path or the columnar bulk-emission engine "
                             "(default: %(default)s, columnar for large schedules; "
                             "both produce bit-identical graphs)")
    parser.add_argument("--sim-engine", default="auto",
                        choices=("auto", "legacy", "level"),
                        help="LogGOPS simulation engine: the per-vertex legacy "
                             "walk or the level-synchronous vectorised engine "
                             "(default: %(default)s, level for large graphs; "
                             "both are timestamp-identical)")
    parser.add_argument("--envelope-engine", default="auto",
                        choices=("auto", "forward", "lp"),
                        help="T(L) envelope engine: the single-traversal "
                             "forward line propagation (no LP solves) or the "
                             "LP tangent search (default: %(default)s — "
                             "forward whenever the affinity contract holds, "
                             "LP otherwise; both produce the identical curve)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_app_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("app", choices=sorted(ALL_APPS), help="application skeleton")
        p.add_argument("--nranks", type=int, default=8, help="number of MPI ranks")
        p.add_argument("--allreduce", default="recursive_doubling",
                       choices=("recursive_doubling", "ring", "reduce_bcast"),
                       help="allreduce algorithm used by Schedgen")

    analyze = sub.add_parser("analyze", help="runtime, λ_L, ρ_L and latency tolerances")
    add_app_args(analyze)
    analyze.add_argument("--json", action="store_true", help="print machine-readable JSON")

    sweep = sub.add_parser("sweep", help="measured-vs-predicted ΔL sweep")
    add_app_args(sweep)
    sweep.add_argument("--max-delta", type=float, default=100.0, help="largest ΔL in µs")
    sweep.add_argument("--points", type=int, default=6, help="number of sweep points")

    curve = sub.add_parser("curve", help="exact T(L)/λ_L(L) curve via the batched sweep engine")
    add_app_args(curve)
    curve.add_argument("--l-max", type=float, default=1000.0, help="largest latency L in µs")
    curve.add_argument("--points", type=int, default=11, help="number of printed curve points")
    curve.add_argument("--backend", default="auto",
                       help="LP backend name from the registry (default: %(default)s)")
    curve.add_argument("--json", action="store_true", help="print machine-readable JSON")

    place = sub.add_parser("place", help="sensitivity-guided rank placement (Algorithm 3)")
    add_app_args(place)
    place.add_argument("--nodes", type=int, default=4, help="number of compute nodes")
    place.add_argument("--ppn", type=int, default=None,
                       help="processes per node (default: nranks/nodes, rounded up)")
    place.add_argument("--intra-latency", type=float, default=0.3,
                       help="intra-node latency in µs (default: %(default)s)")
    place.add_argument("--inter-latency", type=float, default=None,
                       help="inter-node latency in µs (default: the base latency)")
    place.add_argument("--initial", default="block",
                       choices=("block", "round_robin", "random"),
                       help="initial mapping refined by the search")
    place.add_argument("--max-iterations", type=int, default=20,
                       help="maximum number of accepted swaps")
    place.add_argument("--top-k", type=int, default=4,
                       help="candidate swaps LP-verified per iteration")
    place.add_argument("--backend", default="highs",
                       help="LP backend name from the registry (default: %(default)s)")
    place.add_argument("--json", action="store_true", help="print machine-readable JSON")

    trace = sub.add_parser("trace", help="write a liballprof-style trace")
    add_app_args(trace)
    trace.add_argument("--output", required=True, help="output trace file")

    goal = sub.add_parser("goal", help="write a GOAL schedule")
    add_app_args(goal)
    goal.add_argument("--output", required=True, help="output GOAL file")

    cache = sub.add_parser(
        "cache",
        help="inspect, clear or warm a content-addressed artifact store",
        description="Operate on a repro.artifacts.ArtifactStore directory: "
                    "'stats' prints per-kind entry counts and sizes, 'clear' "
                    "deletes entries, and 'warm APP' builds and stores the "
                    "graph, LP and T(L) envelope of an application skeleton "
                    "so later analyses are answered from disk.",
    )
    cache.add_argument("action", choices=("stats", "clear", "warm"),
                       help="store operation")
    cache.add_argument("app", nargs="?", choices=sorted(ALL_APPS),
                       help="application skeleton (required for 'warm')")
    cache.add_argument("--dir", required=True, dest="cache_dir",
                       help="artifact store directory")
    cache.add_argument("--kind", choices=("graph", "lp", "envelope"), default=None,
                       help="restrict 'clear' to one artifact kind")
    cache.add_argument("--nranks", type=int, default=8, help="number of MPI ranks")
    cache.add_argument("--allreduce", default="recursive_doubling",
                       choices=("recursive_doubling", "ring", "reduce_bcast"),
                       help="allreduce algorithm used by Schedgen")
    cache.add_argument("--l-max", type=float, default=1000.0,
                       help="largest latency L in µs for the warmed envelope")
    cache.add_argument("--json", action="store_true", help="print machine-readable JSON")

    from .simulator.injector import INJECTOR_NAMES

    fleet = sub.add_parser(
        "fleet",
        help="run a scenario fleet across the shared-memory worker pool",
        description="Expand the cross product of applications, rank counts, "
                    "allreduce algorithms, base latencies and injectors into "
                    "scenarios, run them on a persistent pool of spawn "
                    "workers attached zero-copy to the shared graph columns, "
                    "and write per-app FLEET_<app>.json shards plus one "
                    "deterministic FLEET_summary.json.",
    )
    fleet.add_argument("apps", nargs="+", choices=sorted(ALL_APPS),
                       help="application skeletons in the fleet")
    fleet.add_argument("--nranks", type=int, nargs="+", default=[8],
                       help="rank counts (grid axis; default: %(default)s)")
    fleet.add_argument("--allreduce", nargs="+", default=["recursive_doubling"],
                       choices=("recursive_doubling", "ring", "reduce_bcast"),
                       help="allreduce algorithms (grid axis)")
    fleet.add_argument("--latencies", type=float, nargs="+", default=None,
                       help="base latencies L in µs (grid axis; default: --latency)")
    fleet.add_argument("--injectors", nargs="+", default=["none"],
                       choices=("none",) + INJECTOR_NAMES,
                       help="latency injectors (grid axis; 'none' = LP-only)")
    fleet.add_argument("--sim-deltas", type=float, nargs="+", default=[0.0, 10.0],
                       help="ΔL points simulated for injector scenarios (µs)")
    fleet.add_argument("--l-max", type=float, default=1000.0,
                       help="largest latency L in µs for the envelopes")
    fleet.add_argument("--processes", type=int, default=None,
                       help="worker processes (default: cpu count; 1 = inline)")
    fleet.add_argument("--cache-dir", default=None,
                       help="shared artifact store directory for the workers")
    fleet.add_argument("--output-dir", default=None,
                       help="directory for FLEET_*.json shards and the summary")
    fleet.add_argument("--backend", default="auto",
                       help="LP backend name from the registry (default: %(default)s)")
    fleet.add_argument("--json", action="store_true", help="print machine-readable JSON")

    ingest = sub.add_parser(
        "ingest",
        help="stream a trace or GOAL file and analyze it out-of-core",
        description="Parse an on-disk trace or GOAL schedule through the "
                    "chunked streaming readers — fixed-size record blocks "
                    "straight into columnar batches (traces) or the graph "
                    "builder (GOAL), bit-identical to the monolithic "
                    "loaders — and run the LP latency analysis. With a "
                    "--mmap-dir the accumulated columns are disk-backed, "
                    "so peak memory is bounded by the chunk size plus the "
                    "LP working set, not the input size.",
    )
    ingest.add_argument("format", choices=("trace", "goal"),
                        help="input file format")
    ingest.add_argument("input", help="trace (# llamp-trace v1) or GOAL file")
    ingest.add_argument("--chunk-size", default="auto",
                        help="records per parse block: 'auto' "
                             f"({DEFAULT_CHUNK_RECORDS}) or a positive integer")
    ingest.add_argument("--mmap-dir", default="auto",
                        help="where the ingested columns live: 'auto' "
                             "(temporary directory, removed after the "
                             "analysis), 'none' (keep everything in RAM), "
                             "or an existing directory (default: %(default)s)")
    ingest.add_argument("--min-compute", type=float, default=0.0,
                        help="smallest inter-call gap (µs) turned into a "
                             "compute vertex (trace format only)")
    ingest.add_argument("--json", action="store_true",
                        help="print machine-readable JSON")

    return parser


def _cmd_analyze(args: argparse.Namespace) -> int:
    params = _params_from_args(args)
    # analyze-only command: auto/fused take the fused batches→CSR path (the
    # frozen graph would be built only to be re-lowered and thrown away)
    if args.lp_engine in ("auto", "fused"):
        source = _app_schedule(args, params)
    else:
        source = _app_graph(args, params)
    analyzer = LatencyAnalyzer(
        source, params, lp_engine=args.lp_engine,
        envelope_engine=args.envelope_engine,
    )
    summary = analyzer.summary()
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"application        : {args.app} ({args.nranks} ranks, "
          f"{analyzer.graph.num_events} events)")
    print(f"predicted runtime  : {summary['runtime_us'] / 1e6:.4f} s")
    print(f"lambda_L           : {summary['lambda_L']:.1f} messages on the critical path")
    print(f"rho_L              : {summary['rho_L'] * 100:.2f} % of the critical path is latency")
    for level in (1, 2, 5):
        key = f"tolerance_{level}pct_us"
        print(f"{level}% latency tolerance : {summary[key]:.1f} µs "
              f"(ΔL = {summary[key] - params.L:.1f} µs over the base latency)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    params = _params_from_args(args)
    graph = _app_graph(args, params)
    deltas = np.linspace(0.0, args.max_delta, args.points)
    sweep = run_validation_sweep(
        graph, params, app=args.app, delta_Ls=deltas, lp_engine=args.lp_engine,
        sim_engine=args.sim_engine,
    )
    print(f"{'ΔL [µs]':>10s} {'measured [s]':>14s} {'predicted [s]':>14s} {'λ_L':>10s} {'ρ_L':>8s}")
    for row in sweep.rows():
        print(
            f"{row['delta_L_us']:10.1f} {row['measured_us'] / 1e6:14.4f} "
            f"{row['predicted_us'] / 1e6:14.4f} {row['lambda_L']:10.1f} "
            f"{row['rho_L'] * 100:7.2f}%"
        )
    print(f"RRMSE: {sweep.rrmse * 100:.2f}%")
    return 0


def _cmd_curve(args: argparse.Namespace) -> int:
    from .lp.backends import default_registry

    try:
        default_registry.get(args.backend)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    params = _params_from_args(args)
    if args.l_max <= params.L:
        raise SystemExit(
            f"--l-max ({args.l_max} µs) must exceed the base latency ({params.L} µs)"
        )
    if args.lp_engine in ("auto", "fused"):
        source = _app_schedule(args, params)
    else:
        source = _app_graph(args, params)
    analyzer = LatencyAnalyzer(
        source, params, backend=args.backend, lp_engine=args.lp_engine,
        envelope_engine=args.envelope_engine,
    )
    graph = analyzer.graph
    sweep = analyzer.batched_sweep(l_max=args.l_max)
    Ls = np.linspace(params.L, args.l_max, args.points)
    values = sweep.values(Ls)
    slopes = sweep.sensitivities(Ls)
    breakpoints = sweep.breakpoints()
    if args.json:
        print(json.dumps({
            "L_us": Ls.tolist(),
            "runtime_us": values.tolist(),
            "lambda_L": slopes.tolist(),
            "critical_latencies_us": breakpoints,
            "lp_solves": sweep.num_solves,
        }, indent=2))
        return 0
    print(f"application        : {args.app} ({args.nranks} ranks, {graph.num_events} events)")
    print(f"LP solves          : {sweep.num_solves} for {args.points} curve points "
          f"({len(breakpoints)} critical latencies)")
    print(f"{'L [µs]':>12s} {'T [s]':>12s} {'λ_L':>10s}")
    for L, T, lam in zip(Ls, values, slopes):
        print(f"{L:12.2f} {T / 1e6:12.4f} {lam:10.1f}")
    if breakpoints:
        shown = ", ".join(f"{bp:.3f}" for bp in breakpoints[:10])
        more = "" if len(breakpoints) <= 10 else f" (+{len(breakpoints) - 10} more)"
        print(f"critical latencies : {shown}{more}")
    else:
        print("critical latencies : none in the swept interval")
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    from .lp.backends import default_registry
    from .network import ArchitectureGraph, block_mapping, random_mapping, round_robin_mapping
    from .placement import llamp_placement, predicted_runtime, volume_greedy_placement

    try:
        default_registry.get(args.backend)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    if args.nodes < 1:
        raise SystemExit(f"--nodes must be >= 1, got {args.nodes}")
    if args.top_k < 1:
        raise SystemExit(f"--top-k must be >= 1, got {args.top_k}")
    ppn = args.ppn if args.ppn is not None else -(-args.nranks // args.nodes)
    if ppn < 1 or args.nodes * ppn < args.nranks:
        raise SystemExit(
            f"{args.nranks} ranks exceed the machine capacity "
            f"({args.nodes} nodes x {ppn} slots)"
        )
    params = _params_from_args(args)
    graph = _app_graph(args, params)
    arch = ArchitectureGraph(
        num_nodes=args.nodes,
        processes_per_node=ppn,
        intra_node_latency=args.intra_latency,
        inter_node_latency=params.L if args.inter_latency is None else args.inter_latency,
    )
    initial_builders = {
        "block": block_mapping,
        "round_robin": round_robin_mapping,
        "random": random_mapping,
    }
    initial = initial_builders[args.initial](args.nranks, arch)
    from .core.lp_builder import build_lp

    # one per-pair LP shared by the search and both baseline evaluations
    graph_lp = build_lp(
        graph, params, latency_mode="per_pair", gap_mode="per_pair",
        engine=args.lp_engine,
    )
    result = llamp_placement(
        graph, params, arch,
        initial_mapping=initial,
        max_iterations=args.max_iterations,
        backend=args.backend,
        top_k=args.top_k,
        graph_lp=graph_lp,
    )
    block = block_mapping(args.nranks, arch)
    baselines = {
        "block": predicted_runtime(
            graph, params, arch, block, backend=args.backend, graph_lp=graph_lp
        ),
        "volume_greedy": predicted_runtime(
            graph, params, arch, volume_greedy_placement(graph, arch),
            backend=args.backend, graph_lp=graph_lp,
        ),
    }
    if args.json:
        print(json.dumps({
            "initial_mapping": list(initial),
            "mapping": result.mapping,
            "initial_runtime_us": result.initial_runtime,
            "predicted_runtime_us": result.predicted_runtime,
            "improvement": result.improvement,
            "iterations": result.iterations,
            "swaps": [list(swap) for swap in result.swaps],
            "lp_solves": result.num_lp_solves,
            "lp_reassemblies": result.num_reassemblies,
            "baseline_runtime_us": baselines,
        }, indent=2))
        return 0
    print(f"application        : {args.app} ({args.nranks} ranks on {args.nodes} nodes, "
          f"{ppn} slots each)")
    print(f"initial mapping    : {args.initial} → {result.initial_runtime / 1e6:.4f} s")
    print(f"refined mapping    : {result.mapping}")
    print(f"predicted runtime  : {result.predicted_runtime / 1e6:.4f} s "
          f"({result.improvement * 100:.2f}% better, {len(result.swaps)} swaps)")
    for name, runtime in baselines.items():
        print(f"{name:<19s}: {runtime / 1e6:.4f} s")
    print(f"LP solves          : {result.num_lp_solves} on one assembled model "
          f"({result.num_reassemblies} re-assemblies)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    params = _params_from_args(args)
    module = ALL_APPS[args.app]
    program = module.program(args.nranks)
    trace = trace_program(program, params)
    dump_trace(trace, args.output)
    print(f"wrote {trace.num_records} records for {trace.nranks} ranks to {args.output}")
    return 0


def _cmd_goal(args: argparse.Namespace) -> int:
    params = _params_from_args(args)
    graph = _app_graph(args, params)
    dump_goal(graph, args.output)
    print(f"wrote {graph.num_events} vertices / {graph.num_edges} edges to {args.output}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .artifacts import ArtifactStore, combine_digests, envelope_key

    store = ArtifactStore(args.cache_dir)
    if args.action == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats, indent=2))
            return 0
        print(f"store              : {stats['root']}")
        for kind, row in stats["kinds"].items():
            print(f"{kind:<19s}: {row['entries']} entries, {row['bytes']} bytes")
        print(f"total              : {stats['total_entries']} entries, "
              f"{stats['total_bytes']} bytes")
        return 0
    if args.action == "clear":
        removed = store.clear(args.kind)
        what = args.kind if args.kind else "all kinds"
        print(f"removed {removed} entries ({what}) from {store.root}")
        return 0
    # warm: build the graph, LP and envelope once and persist all three
    if args.app is None:
        raise SystemExit("'llamp cache warm' needs an application skeleton argument")
    params = _params_from_args(args)
    if args.l_max <= params.L:
        raise SystemExit(
            f"--l-max ({args.l_max} µs) must exceed the base latency ({params.L} µs)"
        )
    graph = _app_graph(args, params)
    store.get_or_build_graph(graph.content_digest(), lambda: graph)
    analyzer = LatencyAnalyzer(
        graph, params, lp_engine=args.lp_engine,
        envelope_engine=args.envelope_engine, cache_dir=args.cache_dir
    )
    sweep = analyzer.batched_sweep(l_max=args.l_max)
    lp_key = combine_digests(
        "lp", graph.content_digest(), params.content_digest(), args.lp_engine
    )
    if not store.contains("lp", lp_key):
        store.put("lp", lp_key, analyzer.lp.model)
    env_key = envelope_key(
        graph, params, l_min=params.L, l_max=args.l_max,
        gap_symbolic=False, lp_engine=args.lp_engine,
    )
    breakpoints = sweep.breakpoints()
    if args.json:
        print(json.dumps({
            "app": args.app,
            "nranks": args.nranks,
            "events": graph.num_events,
            "graph_key": graph.content_digest(),
            "lp_key": lp_key,
            "envelope_key": env_key,
            "critical_latencies": len(breakpoints),
            "lp_solves": sweep.num_solves,
        }, indent=2))
        return 0
    print(f"application        : {args.app} ({args.nranks} ranks, {graph.num_events} events)")
    print(f"graph              : {graph.content_digest()[:16]}…")
    print(f"lp                 : {lp_key[:16]}…")
    print(f"envelope           : {env_key[:16]}… "
          f"({len(breakpoints)} critical latencies, {sweep.num_solves} LP solves)")
    print(f"store              : {store.root}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .parallel import ScenarioFleet

    latencies = args.latencies if args.latencies else [args.latency]
    params_grid = [
        CSCS_TESTBED.replace(L=lat, o=args.overhead, G=args.gap) for lat in latencies
    ]
    if any(args.l_max <= p.L for p in params_grid):
        raise SystemExit(
            f"--l-max ({args.l_max} µs) must exceed every base latency in the grid"
        )
    injectors = [None if name == "none" else name for name in args.injectors]
    driver = ScenarioFleet(
        args.apps,
        nranks=args.nranks,
        allreduces=args.allreduce,
        params_grid=params_grid,
        injectors=injectors,
        l_max=args.l_max,
        sim_deltas=args.sim_deltas,
        backend=args.backend,
        builder_engine=args.builder_engine,
        envelope_engine=args.envelope_engine,
        processes=args.processes,
        cache_dir=args.cache_dir,
    )
    result = driver.run(output_dir=args.output_dir)
    if args.json:
        print(json.dumps(result.summary, indent=2, sort_keys=True))
        return 0
    merged = result.summary["results"]
    print(f"fleet              : {merged['scenarios']} scenarios over "
          f"{merged['unique_graphs']} unique graphs "
          f"({', '.join(merged['apps'])})")
    print(f"{'scenario':<44s} {'T [s]':>10s} {'λ_L':>8s} {'ρ_L':>7s} {'1% tol [µs]':>12s}")
    for row in merged["rows"]:
        tol = row["tolerance_1pct_us"]
        tol_text = f"{tol:12.1f}" if tol is not None else f"{'—':>12s}"
        print(f"{row['scenario']:<44s} {row['runtime_us'] / 1e6:10.4f} "
              f"{row['lambda_L']:8.1f} {row['rho_L'] * 100:6.2f}% {tol_text}")
    for path in result.shard_paths:
        print(f"shard              : {path}")
    if result.summary_path is not None:
        print(f"summary            : {result.summary_path}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import shutil
    import tempfile

    from .schedgen.streaming import (
        batches_from_trace_chunked,
        load_goal_chunked,
        resolve_chunk_size,
    )

    try:
        resolve_chunk_size(args.chunk_size)
    except ValueError as error:
        raise SystemExit(f"--chunk-size: {error}") from None
    params = _params_from_args(args)
    work_dir: str | None
    cleanup: str | None = None
    if args.mmap_dir == "auto":
        work_dir = cleanup = tempfile.mkdtemp(prefix="llamp-ingest-")
    elif args.mmap_dir == "none":
        work_dir = None
    else:
        work_dir = args.mmap_dir

    try:
        if args.format == "trace":
            batches = batches_from_trace_chunked(
                args.input,
                min_compute=args.min_compute,
                chunk_size=args.chunk_size,
                spill_dir=work_dir,
            )
            analyzer = LatencyAnalyzer.from_batches(
                batches, batches.nranks, params, lp_engine=args.lp_engine
            )
            nranks = batches.nranks
            ingested = {"records": batches.num_rows, "spilled": batches.spilled}
        else:
            graph = load_goal_chunked(
                args.input, chunk_size=args.chunk_size, mmap_dir=work_dir
            )
            analyzer = LatencyAnalyzer(graph, params, lp_engine=args.lp_engine)
            nranks = graph.nranks
            ingested = {
                "vertices": graph.num_events,
                "edges": graph.num_edges,
                "spilled": work_dir is not None,
            }
        summary = analyzer.summary()
        if args.json:
            print(json.dumps({
                "input": args.input,
                "format": args.format,
                "nranks": nranks,
                "ingested": ingested,
                **summary,
            }, indent=2))
            return 0
        spilled = "disk-backed" if ingested["spilled"] else "in-RAM"
        detail = (f"{ingested['records']} op rows" if args.format == "trace"
                  else f"{ingested['vertices']} vertices / {ingested['edges']} edges")
        print(f"ingested           : {args.input} ({args.format}, {nranks} ranks, "
              f"{detail}, {spilled} columns)")
        print(f"predicted runtime  : {summary['runtime_us'] / 1e6:.4f} s")
        print(f"lambda_L           : {summary['lambda_L']:.1f} messages on the critical path")
        print(f"rho_L              : {summary['rho_L'] * 100:.2f} % of the critical path is latency")
        for level in (1, 2, 5):
            key = f"tolerance_{level}pct_us"
            print(f"{level}% latency tolerance : {summary[key]:.1f} µs "
                  f"(ΔL = {summary[key] - params.L:.1f} µs over the base latency)")
        return 0
    finally:
        if cleanup is not None:
            shutil.rmtree(cleanup, ignore_errors=True)


_COMMANDS = {
    "analyze": _cmd_analyze,
    "sweep": _cmd_sweep,
    "curve": _cmd_curve,
    "place": _cmd_place,
    "trace": _cmd_trace,
    "goal": _cmd_goal,
    "cache": _cmd_cache,
    "fleet": _cmd_fleet,
    "ingest": _cmd_ingest,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``llamp`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
