"""System-noise models for the discrete-event simulator.

Measured runtimes on a real cluster are perturbed by OS noise and network
congestion (the paper's HPCG results visibly suffer from it, Section III-C).
To make the reproduction's "measured" data realistic — and the reported
RRMSE values non-trivially zero — the simulator can perturb every computation
interval with a noise model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

__all__ = ["NoiseModel", "NoNoise", "GaussianNoise", "OSJitterNoise"]


class NoiseModel(Protocol):
    """Perturbs the duration of computation vertices.

    ``perturb_many`` is the batch entry point of the level-synchronous
    engine (:mod:`repro.simulator.columnar`): it must consume the model's
    RNG exactly as the equivalent sequence of scalar :meth:`perturb` calls
    would (NumPy ``Generator`` draws are stream-equivalent between scalar
    and vectorised calls), so the two simulation engines perturb
    identically.  ``reset`` re-seeds the RNG, which makes back-to-back
    ``run()`` calls on one simulator reproducible.
    """

    def reset(self) -> None:
        """Re-seed / clear state before a simulation run."""

    def perturb(self, duration: float) -> float:
        """Return the perturbed duration (must stay non-negative)."""

    def perturb_many(self, durations: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`perturb` over one batch of durations, in order."""


@dataclass
class NoNoise:
    """The default: computation runs exactly as long as specified."""

    def reset(self) -> None:  # pragma: no cover - stateless
        return

    def perturb(self, duration: float) -> float:
        return duration

    def perturb_many(self, durations: np.ndarray) -> np.ndarray:
        return np.asarray(durations, dtype=np.float64)


@dataclass
class GaussianNoise:
    """Multiplicative Gaussian noise: ``duration * max(0, N(1, sigma))``.

    ``seed`` is anything :func:`numpy.random.default_rng` accepts — an int
    or a :class:`numpy.random.SeedSequence` (used by the validation sweep to
    derive collision-free per-(repetition, point) streams).
    """

    sigma: float = 0.01
    seed: int | np.random.SeedSequence = 0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")
        self._rng = np.random.default_rng(self.seed)

    def reset(self) -> None:
        # a fresh generator, not a retained one: back-to-back runs on one
        # simulator must replay the identical noise sequence
        self._rng = np.random.default_rng(self.seed)

    def perturb(self, duration: float) -> float:
        if duration <= 0:
            return duration
        factor = max(0.0, 1.0 + self._rng.normal(0.0, self.sigma))
        return duration * factor

    def perturb_many(self, durations: np.ndarray) -> np.ndarray:
        durations = np.asarray(durations, dtype=np.float64)
        out = durations.copy()
        positive = durations > 0
        count = int(np.count_nonzero(positive))
        if count:
            # scalar perturb() draws once per *positive* duration only; the
            # vectorised draw consumes the stream identically
            factors = 1.0 + self._rng.normal(0.0, self.sigma, size=count)
            np.maximum(factors, 0.0, out=factors)
            out[positive] *= factors
        return out


@dataclass
class OSJitterNoise:
    """Sparse OS-noise spikes: with probability ``p`` a detour of ``spike`` µs.

    This mimics the classic "noise injection" model (Hoefler et al., SC'10):
    most intervals are untouched, a few are hit by a fixed-length detour such
    as a timer tick or daemon activity.
    """

    probability: float = 0.001
    spike: float = 50.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.spike < 0:
            raise ValueError(f"spike must be non-negative, got {self.spike}")
        self._rng = np.random.default_rng(self.seed)

    def reset(self) -> None:
        # re-seed so repeated runs replay the same spike pattern
        self._rng = np.random.default_rng(self.seed)

    def perturb(self, duration: float) -> float:
        if duration <= 0:
            return duration
        if self._rng.random() < self.probability:
            return duration + self.spike
        return duration

    def perturb_many(self, durations: np.ndarray) -> np.ndarray:
        durations = np.asarray(durations, dtype=np.float64)
        out = durations.copy()
        positive = durations > 0
        count = int(np.count_nonzero(positive))
        if count:
            hits = self._rng.random(count) < self.probability
            out[positive] += np.where(hits, self.spike, 0.0)
        return out
