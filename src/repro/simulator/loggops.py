"""Discrete-event LogGOPS simulator (the LogGOPSim reproduction).

The simulator replays an MPI execution graph under the LogGOPS model and a
latency-injection policy, producing per-vertex start/end timestamps, the
application makespan (what the paper calls the *measured* runtime when the
delay-thread injector is used), and the critical path.

Timing rules
------------
For a vertex ``v`` on rank ``r`` processed in topological order:

* ``ready(v)`` is the maximum over incoming edges of

  - ``end(u)`` for a dependency edge ``u -> v``;
  - ``release(end(u) + L + (s-1)·G)`` for a communication edge, where
    ``release`` is the injector's delivery policy (strategy A adds ΔL on the
    wire, strategy C serialises deliveries behind a single progress thread,
    …);

* ``CALC``: ``start = ready``, ``end = start + noise(cost)``;
* ``SEND``: ``start = max(ready, nic_free[r])``, ``end = start + o +
  injector.send_extra_delay(r)`` and the NIC is busy until ``start + g``
  (the LogGP *gap*);
* ``RECV``: ``start = ready``, ``end = start + o``.

Because the schedule builder serialises each rank's operations with
dependency edges, CPU occupancy is already encoded in the graph and only the
NIC gap needs explicit resource tracking.

This component doubles as the paper's baseline for Table I / Fig. 7: LLAMP
solves an LP once per latency point, LogGOPSim re-simulates — the benchmark
compares both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..network.params import LogGPSParams
from ..schedgen.graph import EdgeKind, ExecutionGraph, VertexKind
from .injector import IdealInjector, LatencyInjector
from .noise import NoiseModel, NoNoise

__all__ = [
    "SimulationResult",
    "LogGOPSSimulator",
    "simulate",
    "SIM_ENGINES",
    "resolve_sim_engine",
]

#: valid values of the ``sim_engine`` knob (mirrors the LP/builder engines)
SIM_ENGINES = ("auto", "legacy", "level")


def resolve_sim_engine(engine: str, num_vertices: int) -> str:
    """Resolve the ``auto`` simulation-engine policy for a graph size.

    Mirrors the LP-side ``engine="auto"`` and the builder-side
    ``builder_engine="auto"`` choices: the level-synchronous vectorised
    engine (:mod:`repro.simulator.columnar`) at or above
    :data:`~repro.core.lp_builder.COMPILED_ENGINE_THRESHOLD` vertices, the
    per-vertex legacy walk below it.  Both engines are timestamp-identical.
    """
    if engine not in SIM_ENGINES:
        raise ValueError(
            f"unknown sim engine {engine!r}; expected one of {SIM_ENGINES}"
        )
    if engine != "auto":
        return engine
    from ..core.lp_builder import COMPILED_ENGINE_THRESHOLD

    return "level" if num_vertices >= COMPILED_ENGINE_THRESHOLD else "legacy"


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    makespan: float
    start: np.ndarray
    end: np.ndarray
    rank_finish: np.ndarray
    params: LogGPSParams

    @property
    def runtime(self) -> float:
        """Alias for :attr:`makespan` (microseconds)."""
        return self.makespan

    def critical_path(self, graph: ExecutionGraph) -> list[int]:
        """Extract one critical path by backtracking tight predecessors.

        The contribution of a predecessor ``u`` to ``ready(v)`` is ``end(u)``
        for a dependency edge and ``end(u) + L + (s-1)·G`` for a
        communication edge — the ideal wire time must be part of the ranking,
        otherwise a dependency predecessor finishing after ``end(u)`` but
        before the message's *arrival* would shadow the actually-latest
        input.  (Injector release policies are stateful and not replayable
        post-hoc, so their extra delays are not included; under non-ideal
        injectors the ranking is a close approximation.)
        """
        if graph.num_vertices != len(self.end):
            raise ValueError("simulation result does not match the given graph")
        L, G = self.params.L, self.params.G
        edge_src, edge_dst, edge_kind = graph.edge_arrays()
        # one vectorised pass: the contribution of every edge to its
        # target's ready time (end(u) plus the wire time for messages)
        contrib = self.end[edge_src] + np.where(
            edge_kind == int(EdgeKind.COMM),
            L + np.maximum(graph.size[edge_dst] - 1, 0) * G,
            0.0,
        )
        pred_indptr = graph._pred_indptr
        pred_edges = graph._pred_edges
        v = int(np.argmax(self.end))
        path = [v]
        while True:
            start, stop = pred_indptr[v], pred_indptr[v + 1]
            if start == stop:
                break
            # the predecessor whose arrival is latest; ties resolved
            # deterministically towards the lowest edge id (argmax returns
            # the first maximum and the CSR lists in-edges by edge id)
            eids = pred_edges[start:stop]
            v = int(edge_src[eids[np.argmax(contrib[eids])]])
            path.append(v)
        path.reverse()
        return path

    def critical_path_messages(self, graph: ExecutionGraph) -> int:
        """Number of communication edges along the extracted critical path."""
        path = np.asarray(self.critical_path(graph), dtype=np.int64)
        if path.size < 2:
            return 0
        comm_eids = graph.message_edges()
        edge_keys = (
            graph.edge_src[comm_eids] * graph.num_vertices + graph.edge_dst[comm_eids]
        )
        path_keys = path[:-1] * graph.num_vertices + path[1:]
        return int(np.isin(edge_keys, path_keys).sum())


class LogGOPSSimulator:
    """Replay execution graphs under the LogGOPS model (legacy engine).

    The per-vertex reference walk: one Python iteration per vertex in the
    canonical topological order.  The level-synchronous vectorised engine
    (:mod:`repro.simulator.columnar`) is timestamp-identical and ~90x
    faster on trace-scale graphs; :func:`simulate` picks between them via
    ``sim_engine``.
    """

    def __init__(
        self,
        graph: ExecutionGraph,
        params: LogGPSParams,
        injector: LatencyInjector | None = None,
        noise: NoiseModel | None = None,
    ) -> None:
        self.graph = graph
        self.params = params
        self.injector = injector if injector is not None else IdealInjector(0.0)
        self.noise = noise if noise is not None else NoNoise()

    def run(self) -> SimulationResult:
        """Simulate once and return timestamps and the makespan."""
        graph = self.graph
        params = self.params
        injector = self.injector
        noise = self.noise
        injector.reset()
        noise.reset()

        n = graph.num_vertices
        start = np.zeros(n, dtype=np.float64)
        end = np.zeros(n, dtype=np.float64)
        nic_free = np.zeros(graph.nranks, dtype=np.float64)

        kind = graph.kind
        cost = graph.cost
        size = graph.size
        rank = graph.rank
        L, o, g, G = params.L, params.o, params.g, params.G

        order = graph.topological_order()
        pred_indptr = graph._pred_indptr
        pred_edges = graph._pred_edges
        edge_src = graph.edge_src
        edge_kind = graph.edge_kind

        for v in order:
            v = int(v)
            r = int(rank[v])
            ready = 0.0
            for pos in range(pred_indptr[v], pred_indptr[v + 1]):
                eid = int(pred_edges[pos])
                u = int(edge_src[eid])
                if edge_kind[eid] == EdgeKind.COMM:
                    s = int(size[v])
                    arrival = end[u] + L + max(s - 1, 0) * G
                    t = injector.release_time(r, arrival)
                else:
                    t = end[u]
                if t > ready:
                    ready = t
            k = kind[v]
            if k == VertexKind.CALC:
                start[v] = ready
                end[v] = ready + noise.perturb(float(cost[v]))
            elif k == VertexKind.SEND:
                t0 = max(ready, nic_free[r])
                start[v] = t0
                end[v] = t0 + o + injector.send_extra_delay(r)
                nic_free[r] = t0 + g
            else:  # RECV
                start[v] = ready
                end[v] = ready + o

        rank_finish = np.zeros(graph.nranks, dtype=np.float64)
        if n:
            np.maximum.at(rank_finish, rank, end)
        makespan = float(end.max()) if n else 0.0
        return SimulationResult(
            makespan=makespan,
            start=start,
            end=end,
            rank_finish=rank_finish,
            params=params,
        )


def simulate(
    graph: ExecutionGraph,
    params: LogGPSParams,
    *,
    delta_L: float = 0.0,
    injector: LatencyInjector | None = None,
    noise: NoiseModel | None = None,
    sim_engine: str = "auto",
) -> SimulationResult:
    """Simulate once, selecting the engine through ``sim_engine``.

    ``delta_L`` adds latency through an :class:`IdealInjector` unless an
    explicit injector is supplied.  ``sim_engine`` mirrors the LP/builder
    engine knobs: ``"legacy"`` is the per-vertex reference walk
    (:class:`LogGOPSSimulator`), ``"level"`` the level-synchronous
    vectorised engine (:mod:`repro.simulator.columnar`), and ``"auto"``
    (default) picks the level engine for graphs of at least
    :data:`~repro.core.lp_builder.COMPILED_ENGINE_THRESHOLD` vertices.
    The two engines are timestamp-identical.
    """
    if injector is None:
        injector = IdealInjector(delta_L)
    elif delta_L:
        raise ValueError("pass either delta_L or an explicit injector, not both")
    engine = resolve_sim_engine(sim_engine, graph.num_vertices)
    if engine == "level":
        from .columnar import simulate_level

        if noise is None:
            noise = NoNoise()
        return simulate_level(graph, params, injector, noise)
    return LogGOPSSimulator(graph, params, injector=injector, noise=noise).run()
