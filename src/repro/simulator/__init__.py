"""LogGOPS discrete-event simulation, latency injection and noise models."""

from .columnar import (
    GridSimulationResult,
    SweepSimulationResult,
    simulate_level,
    simulate_sweep,
    simulate_sweep_grid,
)
from .injector import (
    INJECTOR_NAMES,
    DelayThreadInjector,
    IdealInjector,
    LatencyInjector,
    ReceiverProgressInjector,
    SenderDelayInjector,
    TwoMessageOutcome,
    make_injector,
    two_message_model,
)
from .loggops import (
    SIM_ENGINES,
    LogGOPSSimulator,
    SimulationResult,
    resolve_sim_engine,
    simulate,
)
from .noise import GaussianNoise, NoiseModel, NoNoise, OSJitterNoise

__all__ = [
    "LogGOPSSimulator",
    "SimulationResult",
    "GridSimulationResult",
    "SweepSimulationResult",
    "simulate",
    "simulate_level",
    "simulate_sweep",
    "simulate_sweep_grid",
    "SIM_ENGINES",
    "resolve_sim_engine",
    "LatencyInjector",
    "IdealInjector",
    "SenderDelayInjector",
    "ReceiverProgressInjector",
    "DelayThreadInjector",
    "make_injector",
    "INJECTOR_NAMES",
    "TwoMessageOutcome",
    "two_message_model",
    "NoiseModel",
    "NoNoise",
    "GaussianNoise",
    "OSJitterNoise",
]
