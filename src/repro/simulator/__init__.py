"""LogGOPS discrete-event simulation, latency injection and noise models."""

from .injector import (
    INJECTOR_NAMES,
    DelayThreadInjector,
    IdealInjector,
    LatencyInjector,
    ReceiverProgressInjector,
    SenderDelayInjector,
    TwoMessageOutcome,
    make_injector,
    two_message_model,
)
from .loggops import LogGOPSSimulator, SimulationResult, simulate
from .noise import GaussianNoise, NoiseModel, NoNoise, OSJitterNoise

__all__ = [
    "LogGOPSSimulator",
    "SimulationResult",
    "simulate",
    "LatencyInjector",
    "IdealInjector",
    "SenderDelayInjector",
    "ReceiverProgressInjector",
    "DelayThreadInjector",
    "make_injector",
    "INJECTOR_NAMES",
    "TwoMessageOutcome",
    "two_message_model",
    "NoiseModel",
    "NoNoise",
    "GaussianNoise",
    "OSJitterNoise",
]
