"""Network latency injection strategies (Fig. 8 of the paper).

The paper validates LLAMP by *injecting* an extra latency ΔL into the network
and comparing the measured slowdown with the model's prediction.  Doing this
accurately in software is subtle; Fig. 8 contrasts four strategies on a
two-message micro-benchmark (sender posts two eager sends back to back,
receiver has both receives pre-posted):

``A — ideal``
    ΔL is added to the wire.  The sender finishes at ``2o``; the second
    message is delivered at ``3o + L0 + B + ΔL``.
``B — sender delay`` (Underwood et al.)
    The send call itself is delayed by ΔL, so the *sender* finishes late
    (``2o + 2ΔL``) and the receiver sees ``3o + L0 + B + 2ΔL``.
``C — receiver progress thread``
    A single progress thread serialises the delays: when ΔL exceeds the time
    between arrivals the second message waits behind the first and is
    released at ``2o + L0 + B + 2ΔL``.
``D — progress + delay threads`` (the paper's injector)
    Each message is stamped on arrival and released exactly ΔL later, which
    reproduces the ideal behaviour.

Here the strategies are implemented as message-delivery policies for the
discrete-event simulator (:mod:`repro.simulator.loggops`) plus a closed-form
model of the two-message micro-benchmark used by the Fig. 8 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..network.params import LogGPSParams

__all__ = [
    "LatencyInjector",
    "IdealInjector",
    "SenderDelayInjector",
    "ReceiverProgressInjector",
    "DelayThreadInjector",
    "make_injector",
    "INJECTOR_NAMES",
    "TwoMessageOutcome",
    "two_message_model",
]


class LatencyInjector(Protocol):
    """Message-delivery policy used by the LogGOPS simulator.

    ``send_extra_delay`` is added to the duration of the send operation on
    the sender's CPU; ``release_time`` maps a message's nominal arrival time
    at the destination rank to the time at which the application may observe
    it.
    """

    delta: float

    def reset(self) -> None:
        """Clear any per-run state (called once per simulation)."""

    def send_extra_delay(self, src_rank: int) -> float:
        """Extra time the send call occupies the sender's CPU."""

    def release_time(self, dst_rank: int, arrival: float) -> float:
        """Time at which a message arriving at ``arrival`` is handed to the app."""


@dataclass
class IdealInjector:
    """Strategy A: ΔL is added to the wire latency itself."""

    delta: float = 0.0

    def reset(self) -> None:  # pragma: no cover - stateless
        return

    def send_extra_delay(self, src_rank: int) -> float:
        return 0.0

    def release_time(self, dst_rank: int, arrival: float) -> float:
        return arrival + self.delta


@dataclass
class SenderDelayInjector:
    """Strategy B: the send operation itself is delayed by ΔL.

    This is the approach of Underwood et al. hooked into ``post_send``; it
    inadvertently delays the *sender's* progress and therefore every
    subsequent send.
    """

    delta: float = 0.0

    def reset(self) -> None:  # pragma: no cover - stateless
        return

    def send_extra_delay(self, src_rank: int) -> float:
        return self.delta

    def release_time(self, dst_rank: int, arrival: float) -> float:
        return arrival


@dataclass
class ReceiverProgressInjector:
    """Strategy C: a single receiver-side progress thread serialises delays."""

    delta: float = 0.0
    _busy_until: dict[int, float] = field(default_factory=dict)

    def reset(self) -> None:
        self._busy_until.clear()

    def send_extra_delay(self, src_rank: int) -> float:
        return 0.0

    def release_time(self, dst_rank: int, arrival: float) -> float:
        start = max(arrival, self._busy_until.get(dst_rank, 0.0))
        release = start + self.delta
        self._busy_until[dst_rank] = release
        return release


@dataclass
class DelayThreadInjector:
    """Strategy D (the paper's injector): per-message timestamp + delay thread.

    Each message is stamped on arrival and released exactly ΔL later,
    independent of other in-flight messages, so the observable behaviour
    matches the ideal strategy A.
    """

    delta: float = 0.0

    def reset(self) -> None:  # pragma: no cover - stateless
        return

    def send_extra_delay(self, src_rank: int) -> float:
        return 0.0

    def release_time(self, dst_rank: int, arrival: float) -> float:
        return arrival + self.delta


INJECTOR_NAMES = ("ideal", "sender_delay", "receiver_progress", "delay_thread")


def make_injector(name: str, delta: float) -> LatencyInjector:
    """Create an injector by name (one of :data:`INJECTOR_NAMES`)."""
    if name == "ideal":
        return IdealInjector(delta)
    if name == "sender_delay":
        return SenderDelayInjector(delta)
    if name == "receiver_progress":
        return ReceiverProgressInjector(delta)
    if name == "delay_thread":
        return DelayThreadInjector(delta)
    raise ValueError(f"unknown injector {name!r}; expected one of {INJECTOR_NAMES}")


@dataclass(frozen=True)
class TwoMessageOutcome:
    """Completion times of the Fig. 8 micro-benchmark."""

    sender_finish: float
    receiver_finish: float


def two_message_model(
    params: LogGPSParams, delta: float, strategy: str, size: int = 1
) -> TwoMessageOutcome:
    """Closed-form Fig. 8 model: two back-to-back eager sends, receives pre-posted.

    ``sender_finish`` is the time at which the sender completes both sends
    (``t_R0`` in the figure), ``receiver_finish`` the time at which the
    receiver has observed both messages (``t_R1``).  Both ranks start at 0 and
    the receiver's pre-posted receives cost one ``o`` each on completion.
    """
    o, L0 = params.o, params.L
    B = params.bandwidth_cost(size)
    if strategy == "ideal" or strategy == "delay_thread":
        sender = 2 * o
        receiver = 3 * o + L0 + B + delta
    elif strategy == "sender_delay":
        sender = 2 * o + 2 * delta
        receiver = 3 * o + L0 + B + 2 * delta
    elif strategy == "receiver_progress":
        sender = 2 * o
        # The progress thread is still serving the first message's delay when
        # the second arrives (whenever delta > o), so the second message is
        # released 2*delta after its arrival-driven lower bound.
        first_release = o + L0 + B + delta
        second_arrival = 2 * o + L0 + B
        second_release = max(second_arrival, first_release) + delta
        receiver = second_release + o
    else:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {INJECTOR_NAMES}")
    return TwoMessageOutcome(sender_finish=sender, receiver_finish=receiver)
