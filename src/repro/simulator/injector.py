"""Network latency injection strategies (Fig. 8 of the paper).

The paper validates LLAMP by *injecting* an extra latency ΔL into the network
and comparing the measured slowdown with the model's prediction.  Doing this
accurately in software is subtle; Fig. 8 contrasts four strategies on a
two-message micro-benchmark (sender posts two eager sends back to back,
receiver has both receives pre-posted):

``A — ideal``
    ΔL is added to the wire.  The sender finishes at ``2o``; the second
    message is delivered at ``3o + L0 + B + ΔL``.
``B — sender delay`` (Underwood et al.)
    The send call itself is delayed by ΔL, so the *sender* finishes late
    (``2o + 2ΔL``) and the receiver sees ``3o + L0 + B + 2ΔL``.
``C — receiver progress thread``
    A single progress thread serialises the delays: when ΔL exceeds the time
    between arrivals the second message waits behind the first and is
    released at ``2o + L0 + B + 2ΔL``.
``D — progress + delay threads`` (the paper's injector)
    Each message is stamped on arrival and released exactly ΔL later, which
    reproduces the ideal behaviour.

Here the strategies are implemented as message-delivery policies for the
discrete-event simulator (:mod:`repro.simulator.loggops`) plus a closed-form
model of the two-message micro-benchmark used by the Fig. 8 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..network.params import LogGPSParams

__all__ = [
    "LatencyInjector",
    "IdealInjector",
    "SenderDelayInjector",
    "ReceiverProgressInjector",
    "DelayThreadInjector",
    "make_injector",
    "INJECTOR_NAMES",
    "TwoMessageOutcome",
    "two_message_model",
]


class LatencyInjector(Protocol):
    """Message-delivery policy used by the LogGOPS simulator.

    ``send_extra_delay`` is added to the duration of the send operation on
    the sender's CPU; ``release_time`` maps a message's nominal arrival time
    at the destination rank to the time at which the application may observe
    it.

    The batch counterparts ``send_extra_delays`` / ``release_times`` are the
    level-synchronous engine's entry points
    (:mod:`repro.simulator.columnar`): one call covers a whole topological
    level of messages.  Stateful policies must process the entries FIFO in
    presentation order — the engines present messages in the shared
    deterministic order (level-major, vertex-id-minor, edge-id within one
    vertex), so a batch call is observationally identical to the equivalent
    sequence of scalar calls.
    """

    delta: float

    def reset(self) -> None:
        """Clear any per-run state (called once per simulation)."""

    def send_extra_delay(self, src_rank: int) -> float:
        """Extra time the send call occupies the sender's CPU."""

    def release_time(self, dst_rank: int, arrival: float) -> float:
        """Time at which a message arriving at ``arrival`` is handed to the app."""

    def send_extra_delays(self, src_ranks: np.ndarray) -> np.ndarray:
        """Vectorised ``send_extra_delay`` for one batch of send vertices."""

    def release_times(self, dst_ranks: np.ndarray, arrivals: np.ndarray) -> np.ndarray:
        """Vectorised ``release_time`` for one batch of messages.

        Equivalent to calling :meth:`release_time` once per entry, in input
        order (the order is part of the contract for stateful policies).
        """


@dataclass
class IdealInjector:
    """Strategy A: ΔL is added to the wire latency itself."""

    delta: float = 0.0

    #: extra wire latency added to every arrival — the level engine folds
    #: this constant into the precomputed edge costs (zero per-level work)
    wire_delta: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.wire_delta = self.delta

    def reset(self) -> None:  # pragma: no cover - stateless
        return

    def send_extra_delay(self, src_rank: int) -> float:
        return 0.0

    def release_time(self, dst_rank: int, arrival: float) -> float:
        return arrival + self.delta

    def send_extra_delays(self, src_ranks: np.ndarray) -> np.ndarray:
        return np.zeros(len(src_ranks), dtype=np.float64)

    def release_times(self, dst_ranks: np.ndarray, arrivals: np.ndarray) -> np.ndarray:
        return np.asarray(arrivals, dtype=np.float64) + self.delta


@dataclass
class SenderDelayInjector:
    """Strategy B: the send operation itself is delayed by ΔL.

    This is the approach of Underwood et al. hooked into ``post_send``; it
    inadvertently delays the *sender's* progress and therefore every
    subsequent send.
    """

    delta: float = 0.0

    #: no wire-side delay: the level engine folds zero into the edge costs
    #: and adds :attr:`delta` to every send duration instead
    wire_delta: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.wire_delta = 0.0

    def reset(self) -> None:  # pragma: no cover - stateless
        return

    def send_extra_delay(self, src_rank: int) -> float:
        return self.delta

    def release_time(self, dst_rank: int, arrival: float) -> float:
        return arrival

    def send_extra_delays(self, src_ranks: np.ndarray) -> np.ndarray:
        return np.full(len(src_ranks), self.delta, dtype=np.float64)

    def release_times(self, dst_ranks: np.ndarray, arrivals: np.ndarray) -> np.ndarray:
        return np.asarray(arrivals, dtype=np.float64)


@dataclass
class ReceiverProgressInjector:
    """Strategy C: a single receiver-side progress thread serialises delays.

    The only stateful strategy: messages bound for one rank queue behind
    that rank's progress thread.  The thread serves them FIFO in the order
    they are handed to it — for the simulators that is the shared
    deterministic order (level-major, vertex-id-minor), so the scalar and
    batch entry points produce identical release times.
    """

    delta: float = 0.0
    _busy_until: dict[int, float] = field(default_factory=dict)

    def reset(self) -> None:
        self._busy_until.clear()

    def send_extra_delay(self, src_rank: int) -> float:
        return 0.0

    def release_time(self, dst_rank: int, arrival: float) -> float:
        start = max(arrival, self._busy_until.get(dst_rank, 0.0))
        release = start + self.delta
        self._busy_until[dst_rank] = release
        return release

    def send_extra_delays(self, src_ranks: np.ndarray) -> np.ndarray:
        return np.zeros(len(src_ranks), dtype=np.float64)

    def release_times(self, dst_ranks: np.ndarray, arrivals: np.ndarray) -> np.ndarray:
        """FIFO-serialise one batch per destination rank (vectorised).

        Within the batch, entries of one rank are served in input order:
        ``release_i = max(arrival_i, busy) + delta`` with ``busy`` advancing
        to ``release_i`` — exactly the scalar recurrence.  Ranks are
        independent, so the batch is processed as a grouped scan: the
        ``j``-th message of every rank is handled in one array step.
        """
        dst_ranks = np.asarray(dst_ranks, dtype=np.int64)
        arrivals = np.asarray(arrivals, dtype=np.float64)
        releases = np.empty_like(arrivals)
        if not len(arrivals):
            return releases
        order, group_starts, group_ranks, counts = group_by_rank(dst_ranks)
        busy = np.array(
            [self._busy_until.get(int(r), 0.0) for r in group_ranks],
            dtype=np.float64,
        )
        for j in range(int(counts.max())):
            active = counts > j
            idx = order[group_starts[active] + j]
            rel = np.maximum(arrivals[idx], busy[active]) + self.delta
            busy[active] = rel
            releases[idx] = rel
        for r, b in zip(group_ranks.tolist(), busy.tolist()):
            self._busy_until[int(r)] = float(b)
        return releases


@dataclass
class DelayThreadInjector:
    """Strategy D (the paper's injector): per-message timestamp + delay thread.

    Each message is stamped on arrival and released exactly ΔL later,
    independent of other in-flight messages, so the observable behaviour
    matches the ideal strategy A.
    """

    delta: float = 0.0

    wire_delta: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.wire_delta = self.delta

    def reset(self) -> None:  # pragma: no cover - stateless
        return

    def send_extra_delay(self, src_rank: int) -> float:
        return 0.0

    def release_time(self, dst_rank: int, arrival: float) -> float:
        return arrival + self.delta

    def send_extra_delays(self, src_ranks: np.ndarray) -> np.ndarray:
        return np.zeros(len(src_ranks), dtype=np.float64)

    def release_times(self, dst_ranks: np.ndarray, arrivals: np.ndarray) -> np.ndarray:
        return np.asarray(arrivals, dtype=np.float64) + self.delta


def group_by_rank(ranks: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Group a batch of rank ids, preserving presentation order per rank.

    Returns ``(order, group_starts, group_ranks, counts)``: ``order`` is the
    stable sort of ``ranks``; group ``i`` consists of the input positions
    ``order[group_starts[i] + j]`` for ``j < counts[i]``, in presentation
    order.  Shared by every grouped serialisation scan of the simulators —
    the NIC-gap recurrence and the receiver-progress queue both walk the
    ``j``-th entry of every rank in one array step.
    """
    order = np.argsort(ranks, kind="stable")
    sorted_ranks = ranks[order]
    first = np.empty(len(order), dtype=bool)
    first[0] = True
    np.not_equal(sorted_ranks[1:], sorted_ranks[:-1], out=first[1:])
    group_starts = np.flatnonzero(first)
    group_ranks = sorted_ranks[group_starts]
    counts = np.diff(np.append(group_starts, len(order)))
    return order, group_starts, group_ranks, counts


INJECTOR_NAMES = ("ideal", "sender_delay", "receiver_progress", "delay_thread")


def make_injector(name: str, delta: float) -> LatencyInjector:
    """Create an injector by name (one of :data:`INJECTOR_NAMES`)."""
    if name == "ideal":
        return IdealInjector(delta)
    if name == "sender_delay":
        return SenderDelayInjector(delta)
    if name == "receiver_progress":
        return ReceiverProgressInjector(delta)
    if name == "delay_thread":
        return DelayThreadInjector(delta)
    raise ValueError(f"unknown injector {name!r}; expected one of {INJECTOR_NAMES}")


@dataclass(frozen=True)
class TwoMessageOutcome:
    """Completion times of the Fig. 8 micro-benchmark."""

    sender_finish: float
    receiver_finish: float


def two_message_model(
    params: LogGPSParams, delta: float, strategy: str, size: int = 1
) -> TwoMessageOutcome:
    """Closed-form Fig. 8 model: two back-to-back eager sends, receives pre-posted.

    ``sender_finish`` is the time at which the sender completes both sends
    (``t_R0`` in the figure), ``receiver_finish`` the time at which the
    receiver has observed both messages (``t_R1``).  Both ranks start at 0 and
    the receiver's pre-posted receives cost one ``o`` each on completion.
    """
    o, L0 = params.o, params.L
    B = params.bandwidth_cost(size)
    if strategy == "ideal" or strategy == "delay_thread":
        sender = 2 * o
        receiver = 3 * o + L0 + B + delta
    elif strategy == "sender_delay":
        sender = 2 * o + 2 * delta
        receiver = 3 * o + L0 + B + 2 * delta
    elif strategy == "receiver_progress":
        sender = 2 * o
        # The progress thread is still serving the first message's delay when
        # the second arrives (whenever delta > o), so the second message is
        # released 2*delta after its arrival-driven lower bound.
        first_release = o + L0 + B + delta
        second_arrival = 2 * o + L0 + B
        second_release = max(second_arrival, first_release) + delta
        receiver = second_release + o
    else:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {INJECTOR_NAMES}")
    return TwoMessageOutcome(sender_finish=sender, receiver_finish=receiver)
