"""Level-synchronous vectorised LogGOPS simulation engine.

The legacy simulator (:mod:`repro.simulator.loggops`) walks the execution
graph one vertex at a time; on trace-scale graphs that pure-Python loop is
the last op-by-op stage of the pipeline.  This engine processes whole
*topological levels* at once (:meth:`~repro.schedgen.graph.ExecutionGraph.
topo_levels`): every predecessor of a level-``k`` vertex lives in a level
``< k``, so one level's ready times, injector releases, noise draws, send
starts and completion times are all computable as array passes.

Per level the engine performs

* a segmented maximum of the predecessor contributions over the level's
  slice of the (level-major) edge permutation — ``end(u)`` for dependency
  edges, ``release(end(u) + L + (s-1)·G)`` for communication edges;
* one batch injector call (``release_times``) for the level's messages and
  one batch noise draw (``perturb_many``) for its computations;
* per-rank NIC-gap tracking for the level's sends (``start = max(ready,
  nic_free)``, the NIC busy until ``start + g``), serialised per rank in
  vertex-id order when one rank posts several sends in the same level.

**Determinism contract.**  Both engines present messages, noise draws and
NIC acquisitions in the *shared deterministic order*: level-major,
vertex-id-minor, edge-id within one vertex — the canonical
:meth:`~repro.schedgen.graph.ExecutionGraph.topological_order`.  Stateful
injectors serve their queue FIFO in that order and NumPy ``Generator``
draws are stream-equivalent between scalar and vectorised calls, so the
level engine is timestamp-identical (to 1e-9 and usually bit-exact) to the
legacy simulator for every injector × noise combination.

:func:`simulate_sweep` stacks a whole ΔL sweep into one run: every level is
advanced for all sweep points in a single 2-D array pass, which turns the
Table I / Fig. 12 re-simulation sweeps into one vectorised traversal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.params import LogGPSParams
from ..schedgen.graph import EdgeKind, ExecutionGraph, VertexKind
from .injector import INJECTOR_NAMES, LatencyInjector, group_by_rank
from .noise import NoiseModel, NoNoise

__all__ = [
    "GridSimulationResult",
    "SweepSimulationResult",
    "simulate_level",
    "simulate_sweep",
    "simulate_sweep_grid",
    "get_level_plan",
]


# ---------------------------------------------------------------------------
# level plan: everything about (graph, params) the per-level loop needs
# ---------------------------------------------------------------------------


class _LevelPlan:
    """Precomputed level-major views of one graph under one configuration.

    All vertex quantities live in *position space* (index into the canonical
    topological order) so each level is one contiguous slice; all edge
    quantities live in the level-major edge permutation (edges sorted by
    destination position, stably — i.e. by (level, vertex id, edge id), the
    shared deterministic order).
    """

    __slots__ = (
        "order", "vptr", "vcost",
        "e_src_pos", "e_cost", "e_comm", "e_dst_rank", "eptr",
        "e_pair", "e_bw",
        "seg_starts", "seg_pos", "sptr",
        "comm_idx", "comm_ptr",
        "send_pos", "send_rank", "send_ptr", "send_dup",
        "calc_pos", "calc_cost", "calc_ptr",
        "reuse_count",
    )

    def __init__(self, graph: ExecutionGraph, params: LogGPSParams) -> None:
        self.reuse_count = 0
        vptr, order = graph.topo_levels()
        pos_of = graph.topo_positions()
        self.order = order
        self.vptr = vptr

        kind_o = graph.kind[order]
        rank_o = graph.rank[order].astype(np.int64, copy=False)
        calc_o = kind_o == int(VertexKind.CALC)
        cost_o = graph.cost[order]
        self.vcost = np.where(calc_o, cost_o, params.o)

        pe = graph._pred_edges
        if len(pe):
            dst = graph.edge_dst[pe]
            dst_pos = pos_of[dst]
            eorder = np.argsort(dst_pos, kind="stable")
            eids = pe[eorder]
            e_dst_pos = dst_pos[eorder]
            e_dst = graph.edge_dst[eids]
            self.e_src_pos = pos_of[graph.edge_src[eids]]
            e_comm = graph.edge_kind[eids] == int(EdgeKind.COMM)
            self.e_comm = e_comm
            self.e_cost = np.where(
                e_comm,
                params.L + np.maximum(graph.size[e_dst] - 1, 0) * params.G,
                0.0,
            )
            self.e_dst_rank = graph.rank[e_dst].astype(np.int64, copy=False)
            # per-pair HLogGP support: directed (src, dst) rank pair code and
            # the bandwidth byte factor of every edge, so a per-pair latency
            # matrix can be gathered per level without touching the graph
            e_src_rank = graph.rank[graph.edge_src[eids]].astype(np.int64, copy=False)
            self.e_pair = e_src_rank * graph.nranks + self.e_dst_rank
            self.e_bw = np.maximum(graph.size[e_dst] - 1, 0)
            seg_first = np.empty(len(eids), dtype=bool)
            seg_first[0] = True
            np.not_equal(e_dst_pos[1:], e_dst_pos[:-1], out=seg_first[1:])
            self.seg_starts = np.flatnonzero(seg_first)
            self.seg_pos = e_dst_pos[self.seg_starts]
            self.comm_idx = np.flatnonzero(e_comm)
        else:
            e_dst_pos = np.empty(0, dtype=np.int64)
            self.e_src_pos = np.empty(0, dtype=np.int64)
            self.e_comm = np.empty(0, dtype=bool)
            self.e_cost = np.empty(0, dtype=np.float64)
            self.e_dst_rank = np.empty(0, dtype=np.int64)
            self.e_pair = np.empty(0, dtype=np.int64)
            self.e_bw = np.empty(0, dtype=np.int64)
            self.seg_starts = np.empty(0, dtype=np.int64)
            self.seg_pos = np.empty(0, dtype=np.int64)
            self.comm_idx = np.empty(0, dtype=np.int64)
        self.eptr = np.searchsorted(e_dst_pos, vptr)
        self.sptr = np.searchsorted(self.seg_pos, vptr)
        self.comm_ptr = np.searchsorted(self.comm_idx, self.eptr)

        num_levels = len(vptr) - 1
        send_pos = np.flatnonzero(kind_o == int(VertexKind.SEND))
        self.send_pos = send_pos
        self.send_rank = rank_o[send_pos]
        self.send_ptr = np.searchsorted(send_pos, vptr)
        self.send_dup = np.zeros(num_levels, dtype=bool)
        if len(send_pos) > 1:
            lvl = np.searchsorted(vptr, send_pos, side="right") - 1
            key = np.sort(lvl * graph.nranks + self.send_rank)
            repeated = key[1:][key[1:] == key[:-1]]
            if repeated.size:
                self.send_dup[np.unique(repeated // graph.nranks)] = True

        self.calc_pos = np.flatnonzero(calc_o)
        self.calc_cost = cost_o[self.calc_pos]
        self.calc_ptr = np.searchsorted(self.calc_pos, vptr)


#: level plans retained per graph; a plan is a few arrays of the graph's own
#: size, so a handful of parameter configurations is plenty (FIFO eviction)
_LEVEL_PLAN_CACHE_SIZE = 4


def get_level_plan(graph: ExecutionGraph, params: LogGPSParams) -> _LevelPlan:
    """The :class:`_LevelPlan` of ``(graph, params)``, cached on the graph.

    The plan depends only on the immutable graph and the parameter set
    (injector deltas are folded in later, on copies), and both the scalar
    level engine and the batched sweep read it without mutation — so
    repeated simulations of the same configuration (e.g. the repetition
    loop of :func:`repro.analysis.validation.run_validation_sweep`, where
    only the noise seed changes between runs) share one plan instead of
    rebuilding it per run.  Keyed by ``params.content_digest()``; a cache
    hit increments ``plan.reuse_count``.
    """
    cache = graph._level_plan_cache
    key = params.content_digest()
    plan = cache.get(key)
    if plan is None:
        plan = _LevelPlan(graph, params)
        if len(cache) >= _LEVEL_PLAN_CACHE_SIZE:
            cache.pop(next(iter(cache)))
        cache[key] = plan
    else:
        plan.reuse_count += 1
    return plan


# ---------------------------------------------------------------------------
# protocol adapters (scalar-only third-party injectors / noise models)
# ---------------------------------------------------------------------------


def _release_times(injector, dst_ranks: np.ndarray, arrivals: np.ndarray) -> np.ndarray:
    batch = getattr(injector, "release_times", None)
    if batch is not None:
        return np.asarray(batch(dst_ranks, arrivals), dtype=np.float64)
    return np.array(
        [injector.release_time(int(r), float(a)) for r, a in zip(dst_ranks, arrivals)],
        dtype=np.float64,
    )


def _send_extra_delays(injector, src_ranks: np.ndarray) -> np.ndarray:
    batch = getattr(injector, "send_extra_delays", None)
    if batch is not None:
        return np.asarray(batch(src_ranks), dtype=np.float64)
    return np.array(
        [injector.send_extra_delay(int(r)) for r in src_ranks], dtype=np.float64
    )


def _perturb_many(noise, durations: np.ndarray) -> np.ndarray:
    batch = getattr(noise, "perturb_many", None)
    if batch is not None:
        return np.asarray(batch(durations), dtype=np.float64)
    return np.array([noise.perturb(float(d)) for d in durations], dtype=np.float64)


def _grouped_send_starts(
    ready_send: np.ndarray, ranks: np.ndarray, nic_free: np.ndarray, g: float
) -> np.ndarray:
    """Send starts when one rank posts several sends in a single level.

    Serialises per rank in presentation (vertex-id) order: ``start_j =
    max(ready_j, nic_free)`` with the NIC busy until ``start_j + g`` —
    the same recurrence the legacy per-vertex walk applies.  ``nic_free``
    (indexed by rank, possibly 2-D with a leading sweep axis) is updated
    in place.
    """
    order, group_starts, group_ranks, counts = group_by_rank(ranks)
    busy = nic_free[..., group_ranks].copy()
    starts = np.empty_like(ready_send)
    for j in range(int(counts.max())):
        active = counts > j
        idx = order[group_starts[active] + j]
        st = np.maximum(ready_send[..., idx], busy[..., active])
        busy[..., active] = st + g
        starts[..., idx] = st
    nic_free[..., group_ranks] = busy
    return starts


# ---------------------------------------------------------------------------
# scalar level engine
# ---------------------------------------------------------------------------


def simulate_level(
    graph: ExecutionGraph,
    params: LogGPSParams,
    injector: LatencyInjector,
    noise: NoiseModel,
    *,
    track_nic: bool = True,
):
    """One simulation run on the level-synchronous engine.

    Timestamp-identical to :meth:`repro.simulator.loggops.LogGOPSSimulator.
    run` for every injector/noise combination (see the module docstring for
    the shared determinism contract).  ``track_nic=False`` drops the
    per-rank NIC-gap resource entirely (a send starts at its ready time),
    which is the semantics of the conventional forward pass
    (:func:`repro.core.graph_analysis.forward_pass`) and of the LP of
    Algorithm 1.
    """
    from .loggops import SimulationResult

    injector.reset()
    noise.reset()
    n = graph.num_vertices
    if n == 0:
        zeros = np.zeros(0, dtype=np.float64)
        return SimulationResult(
            makespan=0.0, start=zeros, end=zeros,
            rank_finish=np.zeros(graph.nranks), params=params,
        )
    plan = get_level_plan(graph, params)

    # injectors that declare a ``wire_delta`` are stateless: the wire-side
    # delay folds into the edge costs and the send-side extra is
    # position-independent, so the per-level injector calls disappear
    wire_delta = getattr(injector, "wire_delta", None)
    stateless = wire_delta is not None
    e_cost = plan.e_cost
    if stateless and wire_delta:
        e_cost = e_cost + np.where(plan.e_comm, float(wire_delta), 0.0)
    send_extra_all = (
        _send_extra_delays(injector, plan.send_rank) if stateless else None
    )
    noise_active = not isinstance(noise, NoNoise)

    end_pos = np.zeros(n, dtype=np.float64)
    start_pos = np.zeros(n, dtype=np.float64)
    nic_free = np.zeros(graph.nranks, dtype=np.float64)
    o, g = params.o, params.g
    vptr, eptr, sptr = plan.vptr, plan.eptr, plan.sptr

    for k in range(len(vptr) - 1):
        p0, p1 = vptr[k], vptr[k + 1]
        e0, e1 = eptr[k], eptr[k + 1]
        width = p1 - p0
        if e1 > e0:
            contrib = end_pos[plan.e_src_pos[e0:e1]] + e_cost[e0:e1]
            if not stateless:
                c0, c1 = plan.comm_ptr[k], plan.comm_ptr[k + 1]
                if c1 > c0:
                    rel = plan.comm_idx[c0:c1] - e0
                    contrib[rel] = _release_times(
                        injector, plan.e_dst_rank[plan.comm_idx[c0:c1]], contrib[rel]
                    )
            s0, s1 = sptr[k], sptr[k + 1]
            seg_ready = np.maximum.reduceat(contrib, plan.seg_starts[s0:s1] - e0)
            if s1 - s0 == width:
                ready = seg_ready
            else:
                ready = np.zeros(width, dtype=np.float64)
                ready[plan.seg_pos[s0:s1] - p0] = seg_ready
        else:
            ready = np.zeros(width, dtype=np.float64)

        end_lvl = ready + plan.vcost[p0:p1]
        if noise_active:
            c0, c1 = plan.calc_ptr[k], plan.calc_ptr[k + 1]
            if c1 > c0:
                rel = plan.calc_pos[c0:c1] - p0
                end_lvl[rel] = ready[rel] + _perturb_many(noise, plan.calc_cost[c0:c1])

        start_lvl = start_pos[p0:p1]
        start_lvl[:] = ready
        s0, s1 = plan.send_ptr[k], plan.send_ptr[k + 1]
        if s1 > s0:
            rel = plan.send_pos[s0:s1] - p0
            ranks = plan.send_rank[s0:s1]
            extra = (
                send_extra_all[s0:s1]
                if stateless
                else _send_extra_delays(injector, ranks)
            )
            if not track_nic:
                st = ready[rel]
            elif plan.send_dup[k]:
                st = _grouped_send_starts(ready[rel], ranks, nic_free, g)
            else:
                st = np.maximum(ready[rel], nic_free[ranks])
                nic_free[ranks] = st + g
            start_lvl[rel] = st
            end_lvl[rel] = st + o + extra
        end_pos[p0:p1] = end_lvl

    start = np.empty(n, dtype=np.float64)
    end = np.empty(n, dtype=np.float64)
    start[plan.order] = start_pos
    end[plan.order] = end_pos
    rank_finish = np.zeros(graph.nranks, dtype=np.float64)
    np.maximum.at(rank_finish, graph.rank, end)
    return SimulationResult(
        makespan=float(end.max()),
        start=start,
        end=end,
        rank_finish=rank_finish,
        params=params,
    )


# ---------------------------------------------------------------------------
# batched ΔL sweep (one 2-D pass per level)
# ---------------------------------------------------------------------------


@dataclass
class SweepSimulationResult:
    """Outcome of one batched ΔL sweep: one simulated run per sweep point."""

    deltas: np.ndarray
    makespan: np.ndarray          # (K,)
    rank_finish: np.ndarray       # (K, nranks)
    params: LogGPSParams
    injector: str

    @property
    def runtimes(self) -> np.ndarray:
        """Alias for :attr:`makespan` (microseconds, one entry per ΔL)."""
        return self.makespan


def simulate_sweep(
    graph: ExecutionGraph,
    params: LogGPSParams,
    deltas,
    *,
    injector: str = "ideal",
    noise: NoiseModel | None = None,
    sim_engine: str = "level",
) -> SweepSimulationResult:
    """Simulate every ΔL point of a sweep in one level-synchronous pass.

    Equivalent to ``[simulate(graph, params, injector=make_injector(name,
    d), noise=noise) for d in deltas]`` — the noise model is re-seeded per
    sweep point exactly as per-point runs would — but each topological
    level advances *all* points at once as a 2-D array pass, so the sweep
    costs one graph traversal instead of ``len(deltas)``.

    ``injector`` is one of :data:`~repro.simulator.injector.INJECTOR_NAMES`;
    ``sim_engine="legacy"`` falls back to per-point legacy runs (the
    reference used by the parity suite).
    """
    deltas = np.asarray(list(deltas), dtype=np.float64).ravel()
    if injector not in INJECTOR_NAMES:
        raise ValueError(
            f"unknown injector {injector!r}; expected one of {INJECTOR_NAMES}"
        )
    if sim_engine not in ("level", "legacy"):
        raise ValueError(
            f"unknown sim_engine {sim_engine!r}; expected 'level' or 'legacy'"
        )
    if noise is None:
        noise = NoNoise()
    if sim_engine == "legacy":
        from .injector import make_injector
        from .loggops import LogGOPSSimulator

        makespans = np.empty(len(deltas), dtype=np.float64)
        finishes = np.empty((len(deltas), graph.nranks), dtype=np.float64)
        for i, delta in enumerate(deltas):
            result = LogGOPSSimulator(
                graph, params, injector=make_injector(injector, float(delta)),
                noise=noise,
            ).run()
            makespans[i] = result.makespan
            finishes[i] = result.rank_finish
        return SweepSimulationResult(
            deltas=deltas, makespan=makespans, rank_finish=finishes,
            params=params, injector=injector,
        )

    grid = simulate_sweep_grid(
        graph, params, deltas, injectors=(injector,), noise=noise
    )
    return grid.sweep(injector)


# ---------------------------------------------------------------------------
# 2-D (injector × ΔL) grid — one traversal for a whole figure
# ---------------------------------------------------------------------------


@dataclass
class GridSimulationResult:
    """Outcome of one 2-D ``(injector × ΔL)`` grid simulation.

    Row ``(i, k)`` is the run of injector ``injectors[i]`` at ``deltas[k]``;
    every row of the grid is advanced in the *same* level pass, so a whole
    Fig. 8-style figure costs one graph traversal.  :meth:`sweep` slices one
    injector back out as a plain :class:`SweepSimulationResult`.
    """

    injectors: tuple[str, ...]
    deltas: np.ndarray            # (K,)
    makespan: np.ndarray          # (I, K)
    rank_finish: np.ndarray       # (I, K, nranks)
    params: LogGPSParams

    @property
    def runtimes(self) -> np.ndarray:
        """Alias for :attr:`makespan` (microseconds, ``(I, K)``)."""
        return self.makespan

    def sweep(self, injector: str) -> SweepSimulationResult:
        """The 1-D ΔL sweep of one injector, as :func:`simulate_sweep` returns it."""
        i = self.injectors.index(injector)
        return SweepSimulationResult(
            deltas=self.deltas,
            makespan=self.makespan[i],
            rank_finish=self.rank_finish[i],
            params=self.params,
            injector=injector,
        )


def simulate_sweep_grid(
    graph: ExecutionGraph,
    params: LogGPSParams,
    deltas,
    *,
    injectors=("ideal",),
    noise: NoiseModel | None = None,
    latency_matrices=None,
    track_nic: bool = True,
) -> GridSimulationResult:
    """Simulate a whole ``(injector × ΔL)`` grid in one level-synchronous pass.

    Per-row equivalent to ``simulate_sweep(graph, params, deltas,
    injector=name)`` for every ``name`` in ``injectors`` — bit-identical per
    point — but all ``I × K`` rows advance together: each topological level
    is one 2-D array pass over the full grid, so Fig. 8 (four injectors over
    one ΔL axis) costs a single graph traversal instead of four.

    ``latency_matrices`` folds per-pair HLogGP base latencies into the same
    pass: a ``(nranks, nranks)`` matrix replaces the scalar ``params.L`` of
    every communication edge (entry ``[src, dst]`` for a ``src → dst``
    message), and a ``(K, nranks, nranks)`` stack gives sweep point ``k`` its
    own matrix — which turns the Fig. 11 topology comparison into one
    traversal with ΔL = 0 and one topology per sweep point.  ``track_nic=
    False`` drops the per-rank NIC gap resource (forward-pass / LP
    semantics, as in :func:`simulate_level`).
    """
    deltas = np.asarray(list(deltas), dtype=np.float64).ravel()
    injectors = tuple(injectors)
    for name in injectors:
        if name not in INJECTOR_NAMES:
            raise ValueError(
                f"unknown injector {name!r}; expected one of {INJECTOR_NAMES}"
            )
    if noise is None:
        noise = NoNoise()
    I = len(injectors)
    K = len(deltas)
    R = I * K
    n = graph.num_vertices
    nranks = graph.nranks
    if latency_matrices is not None:
        latency_matrices = np.asarray(latency_matrices, dtype=np.float64)
        if latency_matrices.shape == (nranks, nranks):
            latency_matrices = np.broadcast_to(
                latency_matrices, (K, nranks, nranks)
            )
        elif latency_matrices.shape != (K, nranks, nranks):
            raise ValueError(
                "latency_matrices must have shape (nranks, nranks) or "
                f"(K, nranks, nranks); got {latency_matrices.shape}"
            )
        lat_flat = latency_matrices.reshape(K, nranks * nranks)
    else:
        lat_flat = None
    if n == 0 or R == 0:
        return GridSimulationResult(
            injectors=injectors,
            deltas=deltas,
            makespan=np.zeros((I, K), dtype=np.float64),
            rank_finish=np.zeros((I, K, nranks), dtype=np.float64),
            params=params,
        )
    plan = get_level_plan(graph, params)

    # exhaustive per-name dispatch: a new injector name must be wired in
    # here explicitly, not silently simulated with its delta ignored.
    # Row r = i * K + k carries injector i at deltas[k].
    wire = np.zeros(R, dtype=np.float64)
    send_extra = np.zeros(R, dtype=np.float64)
    prog_rows: list[int] = []
    for i, name in enumerate(injectors):
        rows = slice(i * K, (i + 1) * K)
        if name in ("ideal", "delay_thread"):
            wire[rows] = deltas
        elif name == "sender_delay":
            send_extra[rows] = deltas
        elif name == "receiver_progress":
            # progress with ΔL = 0 still serialises receives per rank — the
            # whole row block stays on the progress path, never the wire fold
            prog_rows.extend(range(i * K, (i + 1) * K))
        else:  # pragma: no cover - guarded by the INJECTOR_NAMES check above
            raise ValueError(f"injector {name!r} not supported by simulate_sweep_grid")
    wire_col = wire[:, None]
    prog = np.asarray(prog_rows, dtype=np.int64)
    prog_deltas = np.tile(deltas, len(prog) // K) if prog.size else deltas
    busy = np.zeros((len(prog), nranks), dtype=np.float64)  # progress threads

    end_pos = np.zeros((R, n), dtype=np.float64)
    nic_free = np.zeros((R, nranks), dtype=np.float64)
    o, g = params.o, params.g
    vptr, eptr, sptr = plan.vptr, plan.eptr, plan.sptr
    noise_active = not isinstance(noise, NoNoise)
    noise.reset()

    for k in range(len(vptr) - 1):
        p0, p1 = vptr[k], vptr[k + 1]
        e0, e1 = eptr[k], eptr[k + 1]
        width = p1 - p0
        if e1 > e0:
            # wire delay folded per grid row, one level slice at a time
            # (never the dense (R, num_edges) matrix)
            if lat_flat is None:
                e_cost = plan.e_cost[e0:e1]
            else:
                # gather the per-pair base latency of the level's comm edges
                # for every sweep point, tiled across the injector axis; the
                # float expression (L + bw * G) matches the scalar plan
                comm = plan.e_comm[e0:e1]
                pair_lat = lat_flat[:, plan.e_pair[e0:e1]]
                e_cost = np.where(
                    comm, pair_lat + plan.e_bw[e0:e1] * params.G, 0.0
                )
                e_cost = np.tile(e_cost, (I, 1))
            contrib = (
                end_pos[:, plan.e_src_pos[e0:e1]]
                + e_cost
                + wire_col * plan.e_comm[e0:e1]
            )
            if prog.size:
                c0, c1 = plan.comm_ptr[k], plan.comm_ptr[k + 1]
                if c1 > c0:
                    idx = plan.comm_idx[c0:c1]
                    rel = idx - e0
                    ranks = plan.e_dst_rank[idx]
                    contrib[np.ix_(prog, rel)] = _progress_release(
                        contrib[np.ix_(prog, rel)], ranks, busy, prog_deltas
                    )
            s0, s1 = sptr[k], sptr[k + 1]
            seg_ready = np.maximum.reduceat(
                contrib, plan.seg_starts[s0:s1] - e0, axis=1
            )
            if s1 - s0 == width:
                ready = seg_ready
            else:
                ready = np.zeros((R, width), dtype=np.float64)
                ready[:, plan.seg_pos[s0:s1] - p0] = seg_ready
        else:
            ready = np.zeros((R, width), dtype=np.float64)

        end_lvl = ready + plan.vcost[None, p0:p1]
        if noise_active:
            c0, c1 = plan.calc_ptr[k], plan.calc_ptr[k + 1]
            if c1 > c0:
                rel = plan.calc_pos[c0:c1] - p0
                # the noise draw depends only on the durations, which are
                # identical across grid rows (each per-point run re-seeds),
                # so one draw per level serves every row
                perturbed = _perturb_many(noise, plan.calc_cost[c0:c1])
                end_lvl[:, rel] = ready[:, rel] + perturbed[None, :]

        s0, s1 = plan.send_ptr[k], plan.send_ptr[k + 1]
        if s1 > s0:
            rel = plan.send_pos[s0:s1] - p0
            ranks = plan.send_rank[s0:s1]
            if not track_nic:
                st = ready[:, rel]
            elif plan.send_dup[k]:
                st = _grouped_send_starts(ready[:, rel], ranks, nic_free, g)
            else:
                st = np.maximum(ready[:, rel], nic_free[:, ranks])
                nic_free[:, ranks] = st + g
            end_lvl[:, rel] = st + o + send_extra[:, None]
        end_pos[:, p0:p1] = end_lvl

    makespans = end_pos.max(axis=1)
    rank_finish = np.zeros((R, nranks), dtype=np.float64)
    rank_o = graph.rank[plan.order]
    for r in range(R):
        np.maximum.at(rank_finish[r], rank_o, end_pos[r])
    return GridSimulationResult(
        injectors=injectors,
        deltas=deltas,
        makespan=makespans.reshape(I, K),
        rank_finish=rank_finish.reshape(I, K, nranks),
        params=params,
    )


def _progress_release(
    arrivals: np.ndarray, ranks: np.ndarray, busy: np.ndarray, deltas: np.ndarray
) -> np.ndarray:
    """2-D receiver-progress release: serialise per rank across all ΔL columns."""
    releases = np.empty_like(arrivals)
    order, group_starts, group_ranks, counts = group_by_rank(ranks)
    local = busy[:, group_ranks].copy()
    for j in range(int(counts.max())):
        active = counts > j
        idx = order[group_starts[active] + j]
        rel = np.maximum(arrivals[:, idx], local[:, active]) + deltas[:, None]
        local[:, active] = rel
        releases[:, idx] = rel
    busy[:, group_ranks] = local
    return releases
