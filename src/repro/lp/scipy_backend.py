"""HiGHS backend: solve :class:`repro.lp.model.LPModel` with SciPy.

SciPy bundles the open-source HiGHS solver, which — like Gurobi's default
configuration in the paper — runs a presolve phase that removes the redundant
constraints generated from execution graphs and then solves the reduced
problem with the dual simplex or interior-point algorithm.  The marginals
SciPy returns give us constraint duals and variable reduced costs, which is
all LLAMP needs for ``λ_L`` and ``λ_G``.

The model is lowered through :mod:`repro.lp.assembler`, so re-solving the
same model (a latency sweep mutates only variable bounds) reuses the cached
CSR matrix instead of re-expanding the constraint dictionaries.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from .assembler import assemble
from .model import (
    InfeasibleError,
    LPError,
    LPModel,
    LPSolution,
    Status,
    UnboundedError,
)

__all__ = ["solve_highs"]


def solve_highs(
    model: LPModel,
    *,
    warm_start: LPSolution | np.ndarray | None = None,
    method: str = "highs",
    presolve: bool = True,
) -> LPSolution:
    """Solve ``model`` with :func:`scipy.optimize.linprog` (HiGHS).

    ``warm_start`` is accepted for protocol uniformity with the other
    backends but ignored: SciPy's ``linprog`` does not expose a basis
    hand-off for the HiGHS methods.  Sweep-level reuse (the
    :class:`~repro.core.parametric.BatchedSweep` tangent cache) recovers the
    benefit instead.
    """
    del warm_start  # no basis hand-off through scipy.optimize.linprog
    if model.num_vars == 0:
        raise LPError("model has no variables")
    assembled = assemble(model)

    result = linprog(
        assembled.c,
        A_ub=assembled.A_ub,
        b_ub=assembled.b_ub if assembled.A_ub is not None else None,
        bounds=assembled.linprog_bounds(),
        method=method,
        options={"presolve": presolve},
    )

    if result.status == 2:
        raise InfeasibleError(f"LP {model.name!r} is infeasible: {result.message}")
    if result.status == 3:
        raise UnboundedError(f"LP {model.name!r} is unbounded: {result.message}")
    if result.status != 0:
        raise LPError(f"LP {model.name!r} failed: {result.message}")

    obj_sign = assembled.obj_sign
    values = np.asarray(result.x, dtype=np.float64)
    objective = obj_sign * float(result.fun) + assembled.obj_const

    reduced_costs = None
    duals = None
    # SciPy exposes marginals for the HiGHS methods: sensitivities of the
    # *minimisation* objective w.r.t. the variable bounds / constraint RHS.
    lower = getattr(result, "lower", None)
    if lower is not None and getattr(lower, "marginals", None) is not None:
        # d(min obj)/d(lb); convert back to the user's objective sense.
        reduced_costs = obj_sign * np.asarray(lower.marginals, dtype=np.float64)
    ineqlin = getattr(result, "ineqlin", None)
    if (
        model.num_constraints
        and ineqlin is not None
        and getattr(ineqlin, "marginals", None) is not None
    ):
        duals = obj_sign * np.asarray(ineqlin.marginals, dtype=np.float64)

    return LPSolution(
        status=Status.OPTIMAL,
        objective=objective,
        values=values,
        reduced_costs=reduced_costs,
        duals=duals,
        lower_range=None,
        iterations=int(getattr(result, "nit", 0) or 0),
        backend="highs",
        _model=model,
    )
