"""HiGHS backend: solve :class:`repro.lp.model.LPModel` with SciPy.

SciPy bundles the open-source HiGHS solver, which — like Gurobi's default
configuration in the paper — runs a presolve phase that removes the redundant
constraints generated from execution graphs and then solves the reduced
problem with the dual simplex or interior-point algorithm.  The marginals
SciPy returns give us constraint duals and variable reduced costs, which is
all LLAMP needs for ``λ_L`` and ``λ_G``.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .model import (
    InfeasibleError,
    LPError,
    LPModel,
    LPSolution,
    Sense,
    Status,
    UnboundedError,
)

__all__ = ["solve_highs"]


def _build_standard_form(model: LPModel) -> tuple[np.ndarray, sparse.csr_matrix, np.ndarray, list[tuple[float, float]], float, float]:
    """Convert the model to ``min c^T x`` s.t. ``A_ub x <= b_ub`` and bounds.

    Returns ``(c, A_ub, b_ub, bounds, obj_const, obj_sign)`` where
    ``obj_sign`` is -1 when the original problem is a maximisation.
    """
    n = model.num_vars
    obj_sign = 1.0 if model.sense is Sense.MIN else -1.0

    c = np.zeros(n, dtype=np.float64)
    for idx, coeff in model.objective.coeffs.items():
        c[idx] = obj_sign * coeff
    obj_const = model.objective.constant

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    b_ub = np.zeros(model.num_constraints, dtype=np.float64)
    for row, constraint in enumerate(model.constraints):
        # constraint: expr >= 0  ->  -coeffs x <= const
        #             expr <= 0  ->   coeffs x <= -const
        sign = -1.0 if constraint.sense == ">=" else 1.0
        for idx, coeff in constraint.expr.coeffs.items():
            rows.append(row)
            cols.append(idx)
            data.append(sign * coeff)
        b_ub[row] = -sign * constraint.expr.constant

    A_ub = sparse.csr_matrix(
        (data, (rows, cols)), shape=(model.num_constraints, n), dtype=np.float64
    )
    bounds = [(var.lb, None if np.isinf(var.ub) else var.ub) for var in model.variables]
    return c, A_ub, b_ub, bounds, obj_const, obj_sign


def solve_highs(model: LPModel, *, method: str = "highs", presolve: bool = True) -> LPSolution:
    """Solve ``model`` with :func:`scipy.optimize.linprog` (HiGHS)."""
    if model.num_vars == 0:
        raise LPError("model has no variables")
    c, A_ub, b_ub, bounds, obj_const, obj_sign = _build_standard_form(model)

    if model.num_constraints == 0:
        A_ub = None
        b_ub = None

    result = linprog(
        c,
        A_ub=A_ub,
        b_ub=b_ub,
        bounds=bounds,
        method=method,
        options={"presolve": presolve},
    )

    if result.status == 2:
        raise InfeasibleError(f"LP {model.name!r} is infeasible: {result.message}")
    if result.status == 3:
        raise UnboundedError(f"LP {model.name!r} is unbounded: {result.message}")
    if result.status != 0:
        raise LPError(f"LP {model.name!r} failed: {result.message}")

    values = np.asarray(result.x, dtype=np.float64)
    objective = obj_sign * float(result.fun) + obj_const

    reduced_costs = None
    duals = None
    # SciPy exposes marginals for the HiGHS methods: sensitivities of the
    # *minimisation* objective w.r.t. the variable bounds / constraint RHS.
    lower = getattr(result, "lower", None)
    if lower is not None and getattr(lower, "marginals", None) is not None:
        # d(min obj)/d(lb); convert back to the user's objective sense.
        reduced_costs = obj_sign * np.asarray(lower.marginals, dtype=np.float64)
    ineqlin = getattr(result, "ineqlin", None)
    if (
        model.num_constraints
        and ineqlin is not None
        and getattr(ineqlin, "marginals", None) is not None
    ):
        duals = obj_sign * np.asarray(ineqlin.marginals, dtype=np.float64)

    return LPSolution(
        status=Status.OPTIMAL,
        objective=objective,
        values=values,
        reduced_costs=reduced_costs,
        duals=duals,
        lower_range=None,
        iterations=int(getattr(result, "nit", 0) or 0),
        backend="highs",
        _model=model,
    )
