"""A small linear-programming modelling layer.

LLAMP converts execution graphs into linear programs (Section II-C,
Algorithm 1).  The paper uses Gurobi; this reproduction provides a
self-contained modelling layer with interchangeable open backends:

* ``"highs"`` — :func:`scipy.optimize.linprog` with the HiGHS solver
  (default; handles the large LPs generated from application graphs and
  returns dual values / reduced costs);
* ``"simplex"`` — a dense bounded-variable simplex implemented in
  :mod:`repro.lp.simplex` (small problems; additionally reports the ranging
  information that Gurobi exposes as ``SARHSLow``/``SALBLow``).

The modelling objects are deliberately minimal: variables with bounds,
affine expressions, ``>=``/``<=``/``==`` constraints and a linear objective.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "Sense",
    "Status",
    "Variable",
    "LinearExpr",
    "Constraint",
    "LPModel",
    "LPSolution",
    "LPError",
    "InfeasibleError",
    "UnboundedError",
]


class LPError(RuntimeError):
    """Base class for solver failures."""


class InfeasibleError(LPError):
    """The LP has no feasible solution."""


class UnboundedError(LPError):
    """The LP is unbounded in the optimisation direction."""


class Sense(enum.Enum):
    """Objective sense."""

    MIN = "min"
    MAX = "max"


class Status(enum.Enum):
    """Solver status."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass(frozen=True)
class Variable:
    """A decision variable (identified by its index within one model)."""

    model_id: int
    index: int
    name: str
    lb: float = 0.0
    ub: float = float("inf")

    # -- expression building -------------------------------------------------

    def to_expr(self) -> "LinearExpr":
        return LinearExpr({self.index: 1.0}, 0.0)

    def __add__(self, other: "Variable | LinearExpr | float") -> "LinearExpr":
        return self.to_expr() + other

    def __radd__(self, other: float) -> "LinearExpr":
        return self.to_expr() + other

    def __sub__(self, other: "Variable | LinearExpr | float") -> "LinearExpr":
        return self.to_expr() - other

    def __rsub__(self, other: float) -> "LinearExpr":
        return (-1.0) * self.to_expr() + other

    def __mul__(self, factor: float) -> "LinearExpr":
        return self.to_expr() * factor

    def __rmul__(self, factor: float) -> "LinearExpr":
        return self.to_expr() * factor

    def __neg__(self) -> "LinearExpr":
        return self.to_expr() * -1.0

    def __ge__(self, other: "Variable | LinearExpr | float") -> "Constraint":
        return self.to_expr() >= other

    def __le__(self, other: "Variable | LinearExpr | float") -> "Constraint":
        return self.to_expr() <= other


class LinearExpr:
    """An affine expression ``sum(coeff_i * x_i) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping[int, float] | None = None, constant: float = 0.0) -> None:
        self.coeffs: dict[int, float] = dict(coeffs) if coeffs else {}
        self.constant = float(constant)

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def _coerce(value: "Variable | LinearExpr | float") -> "LinearExpr":
        if isinstance(value, LinearExpr):
            return value
        if isinstance(value, Variable):
            return value.to_expr()
        if isinstance(value, (int, float, np.floating, np.integer)):
            return LinearExpr({}, float(value))
        raise TypeError(f"cannot interpret {value!r} as a linear expression")

    def copy(self) -> "LinearExpr":
        return LinearExpr(dict(self.coeffs), self.constant)

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: "Variable | LinearExpr | float") -> "LinearExpr":
        rhs = self._coerce(other)
        result = self.copy()
        for idx, coeff in rhs.coeffs.items():
            result.coeffs[idx] = result.coeffs.get(idx, 0.0) + coeff
            if result.coeffs[idx] == 0.0:
                del result.coeffs[idx]
        result.constant += rhs.constant
        return result

    __radd__ = __add__

    def __sub__(self, other: "Variable | LinearExpr | float") -> "LinearExpr":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other: float) -> "LinearExpr":
        return (self * -1.0) + other

    def __mul__(self, factor: float) -> "LinearExpr":
        if not isinstance(factor, (int, float, np.floating, np.integer)):
            raise TypeError("linear expressions can only be scaled by numbers")
        return LinearExpr(
            {idx: coeff * float(factor) for idx, coeff in self.coeffs.items()},
            self.constant * float(factor),
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinearExpr":
        return self * -1.0

    # -- comparisons build constraints -----------------------------------------

    def __ge__(self, other: "Variable | LinearExpr | float") -> "Constraint":
        return Constraint(self - other, ">=")

    def __le__(self, other: "Variable | LinearExpr | float") -> "Constraint":
        return Constraint(self - other, "<=")

    # -- evaluation -------------------------------------------------------------

    def value(self, assignment: Sequence[float] | np.ndarray) -> float:
        """Evaluate the expression for a full variable assignment."""
        total = self.constant
        for idx, coeff in self.coeffs.items():
            total += coeff * float(assignment[idx])
        return total

    def is_constant(self) -> bool:
        return not self.coeffs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = [f"{coeff:+g}*x{idx}" for idx, coeff in sorted(self.coeffs.items())]
        terms.append(f"{self.constant:+g}")
        return " ".join(terms)


@dataclass
class Constraint:
    """A linear constraint in the canonical form ``expr >= 0`` or ``expr <= 0``."""

    expr: LinearExpr
    sense: str  # ">=" or "<="
    name: str = ""
    index: int = -1

    def __post_init__(self) -> None:
        if self.sense not in (">=", "<="):
            raise ValueError(f"constraint sense must be '>=' or '<=', got {self.sense!r}")

    def violation(self, assignment: Sequence[float] | np.ndarray) -> float:
        """How much the constraint is violated by ``assignment`` (0 if satisfied)."""
        value = self.expr.value(assignment)
        if self.sense == ">=":
            return max(0.0, -value)
        return max(0.0, value)

    def slack(self, assignment: Sequence[float] | np.ndarray) -> float:
        """Signed slack (non-negative when the constraint is satisfied)."""
        value = self.expr.value(assignment)
        return value if self.sense == ">=" else -value


class _DeferredRows:
    """Constraint rows kept in CSR-style arrays until something needs objects.

    Models built through :meth:`LPModel.from_arrays` ship their rows as
    ``(indptr, cols, vals, consts)`` describing expressions ``expr_i`` with
    ``expr_i >= 0`` (or ``<= 0``).  The solver hot path never touches
    :class:`Constraint` objects (backends consume the pre-populated assembled
    cache), so materialisation is deferred until the first structural
    mutation or introspection (``tight_constraints``, ``add_le``, …).
    """

    __slots__ = ("indptr", "cols", "vals", "consts", "sense")

    def __init__(
        self,
        indptr: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        consts: np.ndarray,
        sense: str = ">=",
    ) -> None:
        if sense not in (">=", "<="):
            raise ValueError(f"row sense must be '>=' or '<=', got {sense!r}")
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.cols = np.asarray(cols, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)
        self.consts = np.asarray(consts, dtype=np.float64)
        self.sense = sense

    def __len__(self) -> int:
        return len(self.indptr) - 1

    def materialise(self) -> list[Constraint]:
        """Expand every row into a real :class:`Constraint` (one-time cost)."""
        indptr = self.indptr.tolist()
        cols = self.cols.tolist()
        vals = self.vals.tolist()
        consts = self.consts.tolist()
        constraints = []
        for i in range(len(self)):
            lo, hi = indptr[i], indptr[i + 1]
            constraint = Constraint(
                LinearExpr(dict(zip(cols[lo:hi], vals[lo:hi])), consts[i]),
                self.sense,
            )
            constraint.index = i
            constraints.append(constraint)
        return constraints


class LPModel:
    """A linear program: variables, constraints, objective."""

    _next_model_id = 0

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._id = LPModel._next_model_id
        LPModel._next_model_id += 1
        self.variables: list[Variable] = []
        self._constraints: list[Constraint] = []
        self._deferred_rows: _DeferredRows | None = None
        self.objective: LinearExpr = LinearExpr()
        self.sense: Sense = Sense.MIN
        # Revision counters consumed by :mod:`repro.lp.assembler` to decide
        # how much of the cached CSR lowering can be reused between solves.
        self._structure_version = 0
        self._bounds_version = 0
        self._objective_version = 0
        self._assembled_cache: object | None = None

    # -- construction ----------------------------------------------------------

    @property
    def constraints(self) -> list[Constraint]:
        """The constraint list (materialised on first access for array models)."""
        if self._deferred_rows is not None:
            self._constraints = self._deferred_rows.materialise()
            self._deferred_rows = None
        return self._constraints

    @classmethod
    def from_arrays(
        cls,
        *,
        name: str = "lp",
        var_names: Sequence[str],
        lb: Sequence[float] | np.ndarray,
        ub: Sequence[float] | np.ndarray | None = None,
        row_indptr: np.ndarray,
        row_cols: np.ndarray,
        row_vals: np.ndarray,
        row_consts: np.ndarray,
        row_sense: str = ">=",
    ) -> "LPModel":
        """Construct a model directly from pre-lowered arrays.

        ``row_*`` describe the constraint expressions in CSR layout: row ``i``
        is ``sum(row_vals[k] * x[row_cols[k]]) + row_consts[i] {>=,<=} 0`` for
        ``k`` in ``[row_indptr[i], row_indptr[i+1])``.  Column indices must be
        unique and sorted within each row, with no explicit zeros — the same
        canonical form the incremental assembler produces from dict-backed
        constraints.

        The returned model satisfies the full revision-counter protocol: its
        assembled cache is pre-populated (so the first solve performs no
        Python-level lowering), bound/objective updates refresh the cached
        vectors in place, and any structural mutation (``add_constraint`` /
        ``pop_constraint``) materialises real :class:`Constraint` objects and
        falls back to the ordinary re-assembly path.
        """
        lb = np.asarray(lb, dtype=np.float64)
        ub = (
            np.full(len(lb), np.inf, dtype=np.float64)
            if ub is None
            else np.asarray(ub, dtype=np.float64)
        )
        if not (len(var_names) == len(lb) == len(ub)):
            raise ValueError("var_names, lb and ub must have matching lengths")
        if np.any(lb > ub):
            bad = int(np.flatnonzero(lb > ub)[0])
            raise ValueError(
                f"variable {var_names[bad]}: lower bound {lb[bad]} exceeds "
                f"upper bound {ub[bad]}"
            )
        model = cls(name=name)
        # bulk Variable construction bypassing the frozen-dataclass __init__
        # (object.__setattr__ per field): this loop is the hot spot of large
        # compiled builds, and instances are plain-__dict__ objects
        new = Variable.__new__
        variables = []
        for i, (vname, vlb, vub) in enumerate(zip(var_names, lb.tolist(), ub.tolist())):
            var = new(Variable)
            var.__dict__.update(
                model_id=model._id, index=i, name=vname, lb=vlb, ub=vub
            )
            variables.append(var)
        model.variables = variables
        model._deferred_rows = _DeferredRows(
            row_indptr, row_cols, row_vals, row_consts, row_sense
        )
        model._structure_version = len(model.variables) + len(model._deferred_rows)
        from .assembler import assemble_rows

        model._assembled_cache = assemble_rows(model, model._deferred_rows, lb=lb, ub=ub)
        return model

    def to_arrays(self) -> dict[str, object]:
        """Lower the model to the canonical array form of :meth:`from_arrays`.

        Returns a dictionary whose keys match the keyword arguments of
        :meth:`from_arrays` (``name``, ``var_names``, ``lb``, ``ub``,
        ``row_indptr``, ``row_cols``, ``row_vals``, ``row_consts``,
        ``row_sense``), so ``LPModel.from_arrays(**model.to_arrays())``
        reconstructs an equivalent model.  Array-built models export their
        deferred CSR rows verbatim (a bit-exact round trip); object-built
        models are canonicalised — within each row the columns are sorted
        and unique with explicit zeros dropped, and ``<=`` rows are negated
        into the uniform ``expr >= 0`` form (same feasible set and optimum;
        the dual of a flipped row changes sign).  The objective is *not*
        included — persist it separately (see
        :func:`repro.artifacts.save_lp`).
        """
        lb = np.array([var.lb for var in self.variables], dtype=np.float64)
        ub = np.array([var.ub for var in self.variables], dtype=np.float64)
        var_names = [var.name for var in self.variables]
        if self._deferred_rows is not None:
            rows = self._deferred_rows
            return {
                "name": self.name,
                "var_names": var_names,
                "lb": lb,
                "ub": ub,
                "row_indptr": rows.indptr.copy(),
                "row_cols": rows.cols.copy(),
                "row_vals": rows.vals.copy(),
                "row_consts": rows.consts.copy(),
                "row_sense": rows.sense,
            }
        indptr = np.zeros(len(self._constraints) + 1, dtype=np.int64)
        cols: list[int] = []
        vals: list[float] = []
        consts = np.zeros(len(self._constraints), dtype=np.float64)
        for i, constraint in enumerate(self._constraints):
            sign = 1.0 if constraint.sense == ">=" else -1.0
            items = sorted(
                (idx, sign * coeff)
                for idx, coeff in constraint.expr.coeffs.items()
                if coeff != 0.0
            )
            cols.extend(idx for idx, _ in items)
            vals.extend(coeff for _, coeff in items)
            consts[i] = sign * constraint.expr.constant
            indptr[i + 1] = len(cols)
        return {
            "name": self.name,
            "var_names": var_names,
            "lb": lb,
            "ub": ub,
            "row_indptr": indptr,
            "row_cols": np.asarray(cols, dtype=np.int64),
            "row_vals": np.asarray(vals, dtype=np.float64),
            "row_consts": consts,
            "row_sense": ">=",
        }

    def add_var(
        self, name: str | None = None, lb: float = 0.0, ub: float = float("inf")
    ) -> Variable:
        """Add a decision variable with bounds ``[lb, ub]``."""
        if lb > ub:
            raise ValueError(f"variable {name}: lower bound {lb} exceeds upper bound {ub}")
        index = len(self.variables)
        var = Variable(
            model_id=self._id,
            index=index,
            name=name or f"x{index}",
            lb=float(lb),
            ub=float(ub),
        )
        self.variables.append(var)
        self._structure_version += 1
        return var

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a constraint created with ``expr >= other`` / ``expr <= other``."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a Constraint (build one with 'expr >= value')"
            )
        constraint.index = len(self.constraints)
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        self._structure_version += 1
        return constraint

    def add_ge(self, lhs: Variable | LinearExpr, rhs: Variable | LinearExpr | float,
               name: str = "") -> Constraint:
        """Add ``lhs >= rhs``."""
        return self.add_constraint(LinearExpr._coerce(lhs) >= rhs, name=name)

    def add_le(self, lhs: Variable | LinearExpr, rhs: Variable | LinearExpr | float,
               name: str = "") -> Constraint:
        """Add ``lhs <= rhs``."""
        return self.add_constraint(LinearExpr._coerce(lhs) <= rhs, name=name)

    def pop_constraint(self) -> Constraint:
        """Remove and return the most recently added constraint.

        Temporary rows (e.g. the runtime bound of the latency-tolerance LP)
        must be removed through this method so the cached assembly is
        invalidated; popping ``model.constraints`` directly leaves stale
        lowered arrays behind.
        """
        if not self.constraints:
            raise LPError("model has no constraints to remove")
        constraint = self.constraints.pop()
        self._structure_version += 1
        return constraint

    def set_objective(self, expr: Variable | LinearExpr, sense: Sense | str = Sense.MIN) -> None:
        """Set the objective function and optimisation direction."""
        self.objective = LinearExpr._coerce(expr)
        self.sense = Sense(sense) if not isinstance(sense, Sense) else sense
        self._objective_version += 1

    def set_var_lb(self, var: Variable, lb: float) -> Variable:
        """Replace the lower bound of ``var`` (returns the updated variable).

        Used by Algorithm 2 and the tolerance analysis, which repeatedly
        re-solve the same model with a different bound on ``l``.
        """
        if var.model_id != self._id:
            raise ValueError("variable does not belong to this model")
        updated = Variable(
            model_id=self._id, index=var.index, name=var.name, lb=float(lb), ub=var.ub
        )
        self.variables[var.index] = updated
        self._bounds_version += 1
        return updated

    def set_var_lbs(
        self, indices: Sequence[int] | np.ndarray, lbs: Iterable[float] | np.ndarray
    ) -> None:
        """Replace the lower bounds of many variables in one bounds revision.

        The batched counterpart of :meth:`set_var_lb` for callers that push a
        whole vector of bounds per solve (e.g. the per-pair matrices of the
        placement loop); the revision counter is bumped once instead of once
        per variable.
        """
        indices = list(indices)
        lbs = list(lbs)
        if len(indices) != len(lbs):
            raise ValueError(
                f"set_var_lbs got {len(indices)} indices but {len(lbs)} bounds"
            )
        updates = []
        for index, lb in zip(indices, lbs):
            var = self.variables[index]
            lb = float(lb)
            if lb > var.ub:
                raise ValueError(
                    f"variable {var.name}: lower bound {lb} exceeds upper bound {var.ub}"
                )
            updates.append(
                Variable(model_id=self._id, index=var.index, name=var.name, lb=lb, ub=var.ub)
            )
        # validate-then-apply: a rejected bound must not leave earlier
        # variables mutated behind an unbumped revision counter
        for var in updates:
            self.variables[var.index] = var
        self._bounds_version += 1

    def set_var_ub(self, var: Variable, ub: float) -> Variable:
        """Replace the upper bound of ``var`` (returns the updated variable)."""
        if var.model_id != self._id:
            raise ValueError("variable does not belong to this model")
        updated = Variable(
            model_id=self._id, index=var.index, name=var.name, lb=var.lb, ub=float(ub)
        )
        self.variables[var.index] = updated
        self._bounds_version += 1
        return updated

    # -- introspection -----------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        if self._deferred_rows is not None:
            return len(self._deferred_rows)
        return len(self._constraints)

    @property
    def structure_version(self) -> int:
        """Bumped whenever variables or constraints are added/removed."""
        return self._structure_version

    @property
    def bounds_version(self) -> int:
        """Bumped whenever a variable bound changes."""
        return self._bounds_version

    @property
    def objective_version(self) -> int:
        """Bumped whenever the objective (coefficients or sense) changes."""
        return self._objective_version

    def invalidate(self) -> None:
        """Force a full re-assembly on the next solve.

        Only needed after mutating ``variables``/``constraints``/``objective``
        directly instead of going through the ``add_*``/``set_*``/``pop_*``
        methods.
        """
        self._structure_version += 1

    def variable_by_name(self, name: str) -> Variable:
        for var in self.variables:
            if var.name == name:
                return var
        raise KeyError(f"no variable named {name!r}")

    # -- solving -----------------------------------------------------------------

    def solve(self, backend: str = "highs", **options: object) -> "LPSolution":
        """Solve the model with the selected backend and return a solution.

        ``backend`` names an entry of the default
        :class:`~repro.lp.backends.BackendRegistry` (``"highs"``,
        ``"simplex"``, ``"auto"``, or anything registered by the caller).
        """
        from .backends import default_registry

        return default_registry.solve(self, backend=backend, **options)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LPModel(name={self.name!r}, vars={self.num_vars}, "
            f"constraints={self.num_constraints}, sense={self.sense.value})"
        )


@dataclass
class LPSolution:
    """The result of solving an :class:`LPModel`.

    ``reduced_costs[i]`` is the sensitivity of the objective to the *lower
    bound* of variable ``i`` (this is exactly the quantity LLAMP reads off to
    obtain ``λ_L``, Section II-D1).  ``duals[j]`` is the sensitivity of the
    objective to relaxing constraint ``j``.  Backends that cannot provide a
    field leave it as ``None``.
    """

    status: Status
    objective: float
    values: np.ndarray
    reduced_costs: np.ndarray | None = None
    duals: np.ndarray | None = None
    lower_range: np.ndarray | None = None
    iterations: int = 0
    backend: str = ""
    _model: LPModel | None = None

    def value(self, var: Variable) -> float:
        """Value of ``var`` in the optimal solution."""
        return float(self.values[var.index])

    def reduced_cost(self, var: Variable) -> float:
        """Reduced cost of ``var`` (w.r.t. its lower bound)."""
        if self.reduced_costs is None:
            raise LPError(f"backend {self.backend!r} did not provide reduced costs")
        return float(self.reduced_costs[var.index])

    def dual(self, constraint: Constraint) -> float:
        """Dual value (shadow price) of ``constraint``."""
        if self.duals is None:
            raise LPError(f"backend {self.backend!r} did not provide dual values")
        return float(self.duals[constraint.index])

    def tight_constraints(self, tolerance: float = 1e-6) -> list[int]:
        """Indices of constraints satisfied with equality (the critical path)."""
        if self._model is None:
            raise LPError("solution is not attached to a model")
        tight = []
        for constraint in self._model.constraints:
            if abs(constraint.slack(self.values)) <= tolerance:
                tight.append(constraint.index)
        return tight

    def is_optimal(self) -> bool:
        return self.status is Status.OPTIMAL
