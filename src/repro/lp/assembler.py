"""Incremental CSR assembly: lower an :class:`LPModel` to sparse arrays once.

Every solver call used to expand the model's constraint dictionaries into
fresh coordinate lists — an O(nnz) Python loop per solve, even when the model
structure had not changed between solves.  Latency sweeps re-solve the *same*
model hundreds of times, mutating only the lower bound of the latency
variable, so the lowering dominated everything but the solver itself.

This module lowers a model into an :class:`AssembledLP` — a
:class:`scipy.sparse.csr_matrix` for the constraint rows plus dense NumPy
vectors for the objective, the RHS and the variable bounds — and caches it on
the model.  The cache is keyed by the model's revision counters:

* a *structure* change (variable/constraint added or removed) triggers a full
  re-assembly;
* a *bounds* change only refreshes the ``lb``/``ub`` vectors (O(n), no sparse
  rebuild);
* an *objective* change only refreshes ``c``/``obj_const``/``obj_sign``.

Backends obtain the lowered form through :func:`assemble`; user code never
needs to call this directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from .model import LPModel, Sense

__all__ = ["AssembledLP", "assemble", "assemble_rows", "assembly_counts"]

# Process-local counters of CSR assemblies performed since import, one per
# entry path.  Tests and the artifact-store acceptance criteria snapshot them
# to assert that cached paths perform *zero* new assemblies (mirroring
# ``PlacementResult.num_reassemblies``).
_ASSEMBLY_COUNTS = {"full": 0, "rows": 0}


def assembly_counts() -> dict[str, int]:
    """A snapshot of the process-wide CSR assembly counters.

    ``"full"`` counts :func:`assemble` cache misses (object-model lowering),
    ``"rows"`` counts :func:`assemble_rows` calls (array-model lowering, one
    per :meth:`repro.lp.model.LPModel.from_arrays`).  Bounds/objective
    refreshes of a cached assembly are not counted.
    """
    return dict(_ASSEMBLY_COUNTS)


@dataclass
class AssembledLP:
    """The standard-form lowering ``min c^T x`` s.t. ``A_ub x <= b_ub``, bounds.

    ``obj_sign`` is ``-1.0`` when the user objective is a maximisation (the
    stored ``c`` is already negated so the lowered problem is always a
    minimisation); ``obj_const`` is the user objective's affine constant.
    """

    c: np.ndarray
    A_ub: sparse.csr_matrix | None
    b_ub: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    obj_const: float
    obj_sign: float
    structure_version: int
    bounds_version: int
    objective_version: int

    def linprog_bounds(self) -> np.ndarray:
        """Bounds as the ``(n, 2)`` array accepted by :func:`scipy.optimize.linprog`."""
        return np.column_stack([self.lb, self.ub])


def _refresh_bounds(assembled: AssembledLP, model: LPModel) -> None:
    n = model.num_vars
    lb = np.empty(n, dtype=np.float64)
    ub = np.empty(n, dtype=np.float64)
    for i, var in enumerate(model.variables):
        lb[i] = var.lb
        ub[i] = var.ub
    assembled.lb = lb
    assembled.ub = ub
    assembled.bounds_version = model.bounds_version


def _refresh_objective(assembled: AssembledLP, model: LPModel) -> None:
    obj_sign = 1.0 if model.sense is Sense.MIN else -1.0
    c = np.zeros(model.num_vars, dtype=np.float64)
    for idx, coeff in model.objective.coeffs.items():
        c[idx] = obj_sign * coeff
    assembled.c = c
    assembled.obj_const = model.objective.constant
    assembled.obj_sign = obj_sign
    assembled.objective_version = model.objective_version


def _full_assembly(model: LPModel) -> AssembledLP:
    _ASSEMBLY_COUNTS["full"] += 1
    n = model.num_vars
    m = model.num_constraints

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    b_ub = np.zeros(m, dtype=np.float64)
    for row, constraint in enumerate(model.constraints):
        # constraint: expr >= 0  ->  -coeffs x <= const
        #             expr <= 0  ->   coeffs x <= -const
        sign = -1.0 if constraint.sense == ">=" else 1.0
        for idx, coeff in constraint.expr.coeffs.items():
            rows.append(row)
            cols.append(idx)
            data.append(sign * coeff)
        b_ub[row] = -sign * constraint.expr.constant

    A_ub = None
    if m:
        A_ub = sparse.csr_matrix((data, (rows, cols)), shape=(m, n), dtype=np.float64)

    assembled = AssembledLP(
        c=np.zeros(n, dtype=np.float64),
        A_ub=A_ub,
        b_ub=b_ub,
        lb=np.zeros(n, dtype=np.float64),
        ub=np.zeros(n, dtype=np.float64),
        obj_const=0.0,
        obj_sign=1.0,
        structure_version=model.structure_version,
        bounds_version=-1,
        objective_version=-1,
    )
    _refresh_bounds(assembled, model)
    _refresh_objective(assembled, model)
    return assembled


def assemble_rows(
    model: LPModel,
    rows,
    *,
    lb: np.ndarray | None = None,
    ub: np.ndarray | None = None,
) -> AssembledLP:
    """Lower pre-vectorised constraint rows straight into an :class:`AssembledLP`.

    ``rows`` is a :class:`repro.lp.model._DeferredRows`-shaped object holding
    the constraint expressions in CSR layout (``expr {>=,<=} 0``).  Used by
    :meth:`repro.lp.model.LPModel.from_arrays` to pre-populate the assembled
    cache so the first solve of a compiled model performs no Python-level
    lowering at all.  The canonical standard form matches
    :func:`_full_assembly` exactly: ``expr >= 0`` becomes ``-coeffs x <=
    const`` and ``expr <= 0`` becomes ``coeffs x <= -const``.  ``lb``/``ub``,
    when given, are adopted directly instead of re-gathered from the
    ``Variable`` objects (they must match the model's current bounds).
    """
    _ASSEMBLY_COUNTS["rows"] += 1
    n = model.num_vars
    m = len(rows)
    sign = -1.0 if rows.sense == ">=" else 1.0
    A_ub = None
    if m:
        A_ub = sparse.csr_matrix(
            (sign * rows.vals, rows.cols, rows.indptr), shape=(m, n), dtype=np.float64
        )
    assembled = AssembledLP(
        c=np.zeros(n, dtype=np.float64),
        A_ub=A_ub,
        b_ub=-sign * rows.consts,
        lb=np.zeros(n, dtype=np.float64),
        ub=np.zeros(n, dtype=np.float64),
        obj_const=0.0,
        obj_sign=1.0,
        structure_version=model.structure_version,
        bounds_version=-1,
        objective_version=-1,
    )
    if lb is not None and ub is not None:
        assembled.lb = np.asarray(lb, dtype=np.float64)
        assembled.ub = np.asarray(ub, dtype=np.float64)
        assembled.bounds_version = model.bounds_version
    else:
        _refresh_bounds(assembled, model)
    _refresh_objective(assembled, model)
    return assembled


def assemble(model: LPModel) -> AssembledLP:
    """Lower ``model`` to sparse standard form, reusing the cached assembly.

    The returned object is shared across calls: treat it as read-only (it is
    refreshed in place when only bounds or the objective changed).
    """
    cached = model._assembled_cache
    if isinstance(cached, AssembledLP) and cached.structure_version == model.structure_version:
        if cached.bounds_version != model.bounds_version:
            _refresh_bounds(cached, model)
        if cached.objective_version != model.objective_version:
            _refresh_objective(cached, model)
        return cached
    assembled = _full_assembly(model)
    model._assembled_cache = assembled
    return assembled
