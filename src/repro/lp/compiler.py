"""Vectorised graph→LP compiler: lower an execution graph straight to CSR.

The symbolic builder (:func:`repro.core.lp_builder.build_lp` with
``engine="symbolic"``) walks the DAG vertex by vertex in Python, allocating a
dict-backed :class:`~repro.lp.model.LinearExpr` per vertex and merging
coefficient dictionaries at every step.  That O(V) pure-Python pass dominates
end-to-end time on large schedules now that *solving* is incremental (cached
CSR assembly + the parametric envelope engine).

This module lowers a frozen :class:`~repro.schedgen.graph.ExecutionGraph`
plus a :class:`~repro.network.params.LogGPSParams` configuration directly
into the sparse arrays the backends consume, skipping per-vertex expression
objects entirely:

1. **classify** vertices by in-degree (NumPy): sources (no predecessors),
   chain vertices (exactly one) and merge points (two or more — the only
   vertices that get an auxiliary ``y`` variable and constraint rows);
2. **path-compress** single-predecessor chains: the per-vertex costs (CALC
   durations, ``o`` overhead counts, per-edge ``l`` counts and ``G``
   byte totals) are accumulated from each vertex back to its *anchor* (the
   nearest source or merge point) with pointer jumping — ``O(V log V)``
   vectorised work instead of ``O(V)`` Python dict merges;
3. **emit** constraint rows only at merge points and sinks, as one
   coordinate list that is sorted once into canonical CSR layout.

The result is *structurally identical* to the symbolic build: the same
variables in the same order (``t``, then the symbolic ``l``/``G``/``o``
heads, then per-pair and merge variables in topological sweep order), and
row-equivalent constraints in the same row order — so duals, reduced costs,
:class:`~repro.lp.parametric.ParametricLP` bound updates, the batched sweep
and the placement loop all work unchanged on a compiled model.

See ``src/repro/lp/README.md`` for the variable-ordering contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.params import LogGPSParams
from ..schedgen.graph import EdgeKind, ExecutionGraph, VertexKind
from .model import LPModel, Sense, Variable

__all__ = ["CompiledLP", "compile_lp", "compile_lp_from_batches"]


@dataclass
class CompiledLP:
    """The pre-lowered LP plus the decision-variable handles consumers need.

    Mirrors what :func:`repro.core.lp_builder.build_lp` extracts from the
    symbolic construction; :class:`~repro.core.lp_builder.GraphLP` wraps
    either interchangeably.
    """

    model: LPModel
    t: Variable
    latency: Variable | None
    gap: Variable | None
    overhead: Variable | None
    pair_latency: dict[tuple[int, int], Variable]
    pair_gap: dict[tuple[int, int], Variable]
    sink_rows: list[int]
    num_messages: int
    #: the execution graph the model was lowered from.  The fused path
    #: (:func:`compile_lp_from_batches`) stores its zero-copy analyze-only
    #: graph here so consumers that *do* end up needing graph structure
    #: (simulation, placement, content digests) never rebuild the schedule.
    graph: "ExecutionGraph | None" = None


def compile_lp_from_batches(
    batches,
    nranks: int,
    params: LogGPSParams,
    *,
    algorithms=None,
    protocol=None,
    latency_mode: str = "global",
    gap_mode: str = "constant",
    overhead_mode: str = "constant",
    name: str = "llamp",
) -> CompiledLP:
    """Lower columnar :class:`~repro.schedgen.columnar.RankOpBatch` arrays
    straight to a pre-assembled :class:`LPModel` — the fused analyze-only path.

    The frozen-graph round-trip is skipped entirely: the schedule is emitted
    once into the columnar :class:`~repro.schedgen.graph.GraphBuilder`, an
    :class:`~repro.schedgen.graph.ExecutionGraph` is attached zero-copy over
    the builder's column views (no freeze copies, no structural validation
    pass), the topological level structure comes from the chain-condensed
    engine instead of the generic frontier peel, and :func:`compile_lp` reads
    the CSR views directly.  Because the emitted columns are byte-identical
    to the frozen path and the condensed levels reproduce the deterministic
    order contract exactly, the resulting model is **bit-identical** to
    ``compile_lp(build_columnar(...), params)`` — same variables, same CSR
    arrays, same duals — and ``result.graph.content_digest()`` equals the
    frozen graph's digest, so artifact caches and sweep pools key fused and
    frozen requests to the same entries.

    ``algorithms`` defaults to the standard
    :class:`~repro.schedgen.collectives.CollectiveAlgorithms` selection and
    ``protocol`` to ``ProtocolConfig.from_params(params)``.  The analyze-only
    graph is returned on :attr:`CompiledLP.graph` for consumers that later
    need graph structure (simulation, digests) without a rebuild.
    """
    from ..schedgen.builder import ProtocolConfig
    from ..schedgen.collectives import CollectiveAlgorithms
    from ..schedgen.columnar import build_columnar_fused

    if algorithms is None:
        algorithms = CollectiveAlgorithms()
    if protocol is None:
        protocol = ProtocolConfig.from_params(params)
    graph = build_columnar_fused(
        batches, nranks, algorithms=algorithms, protocol=protocol
    )
    compiled = compile_lp(
        graph,
        params,
        latency_mode=latency_mode,
        gap_mode=gap_mode,
        overhead_mode=overhead_mode,
        name=name,
    )
    compiled.graph = graph
    return compiled


def _pointer_jump(
    n: int,
    parent: np.ndarray,
    channels: list[np.ndarray],
    near_seed: np.ndarray | None,
) -> np.ndarray | None:
    """Accumulate per-vertex deltas from each vertex back to its anchor.

    ``parent`` is the single-predecessor forest (-1 at roots).  On return
    every ``channels[k][v]`` holds the sum of the original deltas along the
    path *anchor(v) .. v* inclusive.  ``near_seed`` (optional, length n+1)
    carries a "nearest chain communication edge at-or-above this vertex"
    marker (-1 when absent) that is propagated with the same jumps; the
    filled array is returned.  All arrays use an extra sentinel slot at
    index ``n`` so roots can jump out of the forest.
    """
    jump = np.append(np.where(parent >= 0, parent, n), n)
    near = near_seed
    # Vertex ids are emission-ordered, so most chain links are contiguous id
    # runs with ``parent == id - 1``.  Collapse each run in one O(n) pass
    # (segmented prefix sums against the run's ``base``, the last non-run
    # vertex at or before each position) so the doubling loop below only has
    # to resolve the sparse cross-segment links: O(log #segments) iterations
    # instead of O(log chain-length).  The seed preserves the loop invariant
    # — ``acc[v]`` is the delta sum over ``(jump[v], v]`` — so the fixpoint
    # is unchanged (up to float association order, as with any jump order).
    ids = np.arange(n, dtype=np.int64)
    run = (ids > 0) & (parent == ids - 1)
    if run.any():
        base = np.maximum.accumulate(np.where(run, np.int64(-1), ids))
        for acc in channels:
            total = np.cumsum(np.where(run, acc[:n], 0.0))
            acc[:n] = np.where(run, total - total[base], acc[:n])
        if near is not None:
            # deepest marker position at-or-before each vertex; a hit inside
            # the run segment (strictly past base) supplies the marker
            gpos = np.maximum.accumulate(
                np.where(near[:n] != -1, ids, np.int64(-1))
            )
            hit = run & (gpos > base)
            near[:n] = np.where(hit, near[np.maximum(gpos, 0)], near[:n])
        jump[:n] = np.where(run, base, jump[:n])
    while np.any(jump[:n] != n):
        j = jump
        for acc in channels:
            acc[:n] += acc[j[:n]]
        if near is not None:
            near[:n] = np.where(near[:n] == -1, near[j[:n]], near[:n])
        jump = j[j]
    return near


def _anchors(n: int, parent: np.ndarray) -> np.ndarray:
    """Root of every vertex in the single-predecessor forest (self at roots)."""
    ids = np.arange(n, dtype=np.int64)
    anchor = np.where(parent >= 0, parent, ids)
    # Same contiguous-run collapse as :func:`_pointer_jump`: seed each run
    # vertex with the last non-run ancestor so doubling only resolves the
    # sparse cross-segment links.
    run = (ids > 0) & (parent == ids - 1)
    if run.any():
        anchor = np.where(
            run, np.maximum.accumulate(np.where(run, np.int64(-1), ids)), anchor
        )
    while True:
        doubled = anchor[anchor]
        if np.array_equal(doubled, anchor):
            return anchor
        anchor = doubled


def compile_lp(
    graph: ExecutionGraph,
    params: LogGPSParams,
    *,
    latency_mode: str = "global",
    gap_mode: str = "constant",
    overhead_mode: str = "constant",
    name: str = "llamp",
) -> CompiledLP:
    """Lower ``graph`` directly to a pre-assembled :class:`LPModel`.

    Accepts the same mode knobs as :func:`repro.core.lp_builder.build_lp`
    and produces a bit-compatible LP structure (same variable order,
    row-equivalent constraints in the same order).
    """
    if latency_mode not in ("global", "per_pair", "constant"):
        raise ValueError(f"unknown latency_mode {latency_mode!r}")
    if gap_mode not in ("constant", "global", "per_pair"):
        raise ValueError(f"unknown gap_mode {gap_mode!r}")
    if overhead_mode not in ("constant", "global"):
        raise ValueError(f"unknown overhead_mode {overhead_mode!r}")

    n = graph.num_vertices
    m = graph.num_edges
    nranks = graph.nranks
    kind = graph.kind
    cost = graph.cost
    size = graph.size
    rank = graph.rank
    edge_src = graph.edge_src
    edge_dst = graph.edge_dst

    indeg = graph.in_degrees()
    topo_pos = graph.topo_positions()
    parent = graph.chain_parent()
    chain_eid = graph.chain_in_edge()

    per_pair_lat = latency_mode == "per_pair"
    per_pair_gap = gap_mode == "per_pair"
    need_pairs = per_pair_lat or per_pair_gap

    is_comm_edge = np.asarray(graph.edge_kind) == int(EdgeKind.COMM)
    if m:
        # one float64 temporary instead of the int64 gather + subtract +
        # maximum + astype chain (4 × E bytes of peak scratch on large graphs)
        bw_edge = size[edge_dst].astype(np.float64)
        bw_edge -= 1.0
        np.maximum(bw_edge, 0.0, out=bw_edge)
    else:
        bw_edge = np.zeros(0)
    if need_pairs and m:
        pair_lo = np.minimum(rank[edge_src], rank[edge_dst]).astype(np.int64)
        pair_hi = np.maximum(rank[edge_src], rank[edge_dst]).astype(np.int64)
        pair_code_edge = pair_lo * nranks + pair_hi
    else:
        pair_code_edge = np.zeros(m, dtype=np.int64)

    # ------------------------------------------------------------------
    # variable layout: head variables, then pair/merge variables in the
    # exact order the symbolic topological sweep would create them
    # ------------------------------------------------------------------
    var_names: list[str] = ["t"]
    var_lbs: list[float] = [0.0]
    lat_col = gap_col = o_col = None
    if latency_mode == "global":
        lat_col = len(var_names)
        var_names.append("l")
        var_lbs.append(params.L)
    if gap_mode == "global":
        gap_col = len(var_names)
        var_names.append("G")
        var_lbs.append(params.G)
    if overhead_mode == "global":
        o_col = len(var_names)
        var_names.append("o")
        var_lbs.append(params.o)

    head = len(var_names)
    merges = graph.merge_points()
    merges = merges[np.argsort(topo_pos[merges], kind="stable")]
    y_col = np.full(n, -1, dtype=np.int64)
    # the dense pair→column tables are O(nranks^2); only the per-pair modes
    # ever read them, so the default global/constant modes (the million-rank
    # analyze path) must not pay for them
    lat_col_of_pair = gap_col_of_pair = None
    lat_pair_cols: list[tuple[tuple[int, int], int]] = []
    gap_pair_cols: list[tuple[tuple[int, int], int]] = []

    if not need_pairs:
        # fast path: the only lazily-created variables are the merge ``y``s,
        # in topological sweep order
        y_col[merges] = head + np.arange(len(merges), dtype=np.int64)
        var_names += ["y%d" % v for v in merges.tolist()]
        var_lbs += [0.0] * len(merges)
    else:
        lat_col_of_pair = np.full(nranks * nranks, -1, dtype=np.int64)
        gap_col_of_pair = np.full(nranks * nranks, -1, dtype=np.int64)
        # events: (vertex sweep position, within-vertex position, kind,
        # payload); kind 0 = pair-latency var, 1 = pair-gap var, 2 = merge
        # (y) var.  Within one vertex, in-edges are processed in ascending
        # edge-id order and the merge variable is created after every edge —
        # hence 2*eid(+1) vs 2*m+2.
        ev_vkey: list[np.ndarray] = []
        ev_ekey: list[np.ndarray] = []
        ev_kind: list[np.ndarray] = []
        ev_payload: list[np.ndarray] = []
        if m:
            sweep = np.argsort(topo_pos[edge_dst], kind="stable")
            comm_sorted = sweep[is_comm_edge[sweep]]
            codes_sorted = pair_code_edge[comm_sorted]
            if per_pair_lat:
                uniq, first = np.unique(codes_sorted, return_index=True)
                eids = comm_sorted[first]
                ev_vkey.append(topo_pos[edge_dst[eids]])
                ev_ekey.append(2 * eids)
                ev_kind.append(np.zeros(len(eids), dtype=np.int64))
                ev_payload.append(uniq)
            if per_pair_gap:
                with_bw = bw_edge[comm_sorted] > 0
                uniq, first = np.unique(codes_sorted[with_bw], return_index=True)
                eids = comm_sorted[with_bw][first]
                ev_vkey.append(topo_pos[edge_dst[eids]])
                ev_ekey.append(2 * eids + 1)
                ev_kind.append(np.ones(len(eids), dtype=np.int64))
                ev_payload.append(uniq)

        ev_vkey.append(topo_pos[merges])
        ev_ekey.append(np.full(len(merges), 2 * m + 2, dtype=np.int64))
        ev_kind.append(np.full(len(merges), 2, dtype=np.int64))
        ev_payload.append(merges)

        vkey = np.concatenate(ev_vkey)
        ekey = np.concatenate(ev_ekey)
        ekind = np.concatenate(ev_kind)
        payload = np.concatenate(ev_payload)
        event_order = np.lexsort((ekey, vkey))

        for k, p in zip(ekind[event_order].tolist(), payload[event_order].tolist()):
            col = len(var_names)
            if k == 0:
                i, j = divmod(p, nranks)
                var_names.append(f"l_{i}_{j}")
                var_lbs.append(params.L)
                lat_col_of_pair[p] = col
                lat_pair_cols.append(((i, j), col))
            elif k == 1:
                i, j = divmod(p, nranks)
                var_names.append(f"G_{i}_{j}")
                var_lbs.append(params.G)
                gap_col_of_pair[p] = col
                gap_pair_cols.append(((i, j), col))
            else:
                var_names.append(f"y{p}")
                var_lbs.append(0.0)
                y_col[p] = col

    # ------------------------------------------------------------------
    # per-vertex cost deltas, then path compression back to each anchor
    # ------------------------------------------------------------------
    calc = np.asarray(kind) == int(VertexKind.CALC)
    if o_col is not None:
        d_const = np.where(calc, cost, 0.0)
        d_o = (~calc).astype(np.float64)
    else:
        # folded in one pass: non-CALC vertices carry the constant overhead
        d_const = np.where(calc, cost, params.o)

    chain_vertices = np.flatnonzero(chain_eid >= 0)
    chain_edges = chain_eid[chain_vertices]
    comm_chain = is_comm_edge[chain_edges] if m else np.zeros(0, dtype=bool)
    cv = chain_vertices[comm_chain]          # chain vertices fed by a message
    cv_eid = chain_edges[comm_chain]
    cv_bw = bw_edge[cv_eid]

    d_l = None
    d_bw = None
    if latency_mode == "global":
        d_l = np.zeros(n, dtype=np.float64)
        d_l[cv] = 1.0
    elif latency_mode == "constant":
        d_const[cv] += params.L
    if gap_mode == "global":
        d_bw = np.zeros(n, dtype=np.float64)
        d_bw[cv] = cv_bw
    elif gap_mode == "constant":
        d_const[cv] += params.G * cv_bw

    channels = [np.append(d_const, 0.0)]
    if d_l is not None:
        channels.append(np.append(d_l, 0.0))
    if d_bw is not None:
        channels.append(np.append(d_bw, 0.0))
    if o_col is not None:
        channels.append(np.append(d_o, 0.0))

    near_seed = None
    if need_pairs:
        near_seed = np.full(n + 1, -1, dtype=np.int64)
        near_seed[cv] = cv_eid
    near = _pointer_jump(n, parent, channels, near_seed)
    anchor = _anchors(n, parent)

    acc = channels
    acc_const = acc[0]
    pos = 1
    acc_l = acc_bw = acc_o = None
    if d_l is not None:
        acc_l = acc[pos]
        pos += 1
    if d_bw is not None:
        acc_bw = acc[pos]
        pos += 1
    if o_col is not None:
        acc_o = acc[pos]

    # ------------------------------------------------------------------
    # rows: one per (merge vertex, in-edge) in sweep order, then sinks
    # ------------------------------------------------------------------
    pred_indptr = graph._pred_indptr
    pred_edges = graph._pred_edges
    counts = indeg[merges]
    starts = pred_indptr[merges]
    total = int(counts.sum())
    local = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(counts) - counts, counts)
    merge_eids = pred_edges[np.repeat(starts, counts) + local]

    sinks = graph.sinks()
    row_u = np.concatenate([edge_src[merge_eids], sinks]).astype(np.int64)
    row_eid = np.concatenate([merge_eids, np.full(len(sinks), -1, dtype=np.int64)])
    row_target = np.concatenate(
        [np.repeat(y_col[merges], counts), np.zeros(len(sinks), dtype=np.int64)]
    )
    R = len(row_u)

    e_comm = np.zeros(R, dtype=bool)
    has_edge = row_eid >= 0
    e_comm[has_edge] = is_comm_edge[row_eid[has_edge]]
    row_bw = np.zeros(R, dtype=np.float64)
    row_bw[e_comm] = bw_edge[row_eid[e_comm]]

    row_const = acc_const[row_u]  # fancy indexing already yields a fresh array
    if latency_mode == "constant":
        row_const[e_comm] += params.L
    if gap_mode == "constant":
        row_const += params.G * row_bw

    coo_rows: list[np.ndarray] = []
    coo_cols: list[np.ndarray] = []
    coo_vals: list[np.ndarray] = []
    all_rows = np.arange(R, dtype=np.int64)

    def emit(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray) -> None:
        coo_rows.append(rows)
        coo_cols.append(cols)
        coo_vals.append(vals)

    emit(all_rows, row_target, np.ones(R, dtype=np.float64))
    anchor_col = y_col[anchor[row_u]]
    anchored = anchor_col >= 0
    emit(all_rows[anchored], anchor_col[anchored], np.full(int(anchored.sum()), -1.0))
    if lat_col is not None:
        coeff = acc_l[row_u] + e_comm
        nz = coeff != 0.0
        emit(all_rows[nz], np.full(int(nz.sum()), lat_col, dtype=np.int64), -coeff[nz])
    if gap_col is not None:
        coeff = acc_bw[row_u] + row_bw
        nz = coeff != 0.0
        emit(all_rows[nz], np.full(int(nz.sum()), gap_col, dtype=np.int64), -coeff[nz])
    if o_col is not None:
        coeff = acc_o[row_u]
        nz = coeff != 0.0
        emit(all_rows[nz], np.full(int(nz.sum()), o_col, dtype=np.int64), -coeff[nz])

    if need_pairs:
        # every message on a row's compressed path: the row's own edge plus
        # the chain edges enumerated through the nearest-comm linked list
        next_comm = np.full(m, -1, dtype=np.int64)
        if cv.size:
            next_comm[cv_eid] = near[parent[cv]]
        walk_rows = [all_rows[e_comm]]
        walk_eids = [row_eid[e_comm]]
        cursor = near[row_u].copy()
        active = np.flatnonzero(cursor >= 0)
        while active.size:
            walk_rows.append(active)
            walk_eids.append(cursor[active])
            cursor[active] = next_comm[cursor[active]]
            active = active[cursor[active] >= 0]
        wrow = np.concatenate(walk_rows)
        weid = np.concatenate(walk_eids)
        wcode = pair_code_edge[weid]
        keyspace = nranks * nranks
        if per_pair_lat:
            keys, cnt = np.unique(wrow * keyspace + wcode, return_counts=True)
            emit(keys // keyspace, lat_col_of_pair[keys % keyspace],
                 -cnt.astype(np.float64))
        if per_pair_gap:
            wbw = bw_edge[weid]
            with_bw = wbw > 0
            keys, inverse = np.unique(
                wrow[with_bw] * keyspace + wcode[with_bw], return_inverse=True
            )
            sums = np.bincount(inverse, weights=wbw[with_bw])
            emit(keys // keyspace, gap_col_of_pair[keys % keyspace], -sums)

    rows_cat = np.concatenate(coo_rows)
    cols_cat = np.concatenate(coo_cols)
    vals_cat = np.concatenate(coo_vals)
    canonical = np.lexsort((cols_cat, rows_cat))
    indptr = np.zeros(R + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows_cat, minlength=R), out=indptr[1:])

    model = LPModel.from_arrays(
        name=name,
        var_names=var_names,
        lb=var_lbs,
        row_indptr=indptr,
        row_cols=cols_cat[canonical],
        row_vals=vals_cat[canonical],
        row_consts=-row_const,
        row_sense=">=",
    )
    t_var = model.variables[0]
    model.set_objective(t_var, Sense.MIN)

    return CompiledLP(
        model=model,
        t=t_var,
        latency=model.variables[lat_col] if lat_col is not None else None,
        gap=model.variables[gap_col] if gap_col is not None else None,
        overhead=model.variables[o_col] if o_col is not None else None,
        pair_latency={key: model.variables[col] for key, col in lat_pair_cols},
        pair_gap={key: model.variables[col] for key, col in gap_pair_cols},
        sink_rows=list(range(total, R)),
        num_messages=int(np.count_nonzero(is_comm_edge)),
    )
