"""Backend registry: a uniform solve protocol over interchangeable solvers.

Every backend is a callable ``solve(model, *, warm_start=None, **options)``
returning an :class:`~repro.lp.model.LPSolution`, registered under a name in
a :class:`BackendRegistry` together with a capability description.  The
default registry ships three entries:

``"highs"``
    :func:`repro.lp.scipy_backend.solve_highs` — sparse, handles the large
    LPs generated from application graphs, provides duals/reduced costs;
``"simplex"``
    :func:`repro.lp.simplex.solve_simplex` — dense two-phase simplex,
    additionally provides lower-bound ranging (Gurobi's ``SALBLow``); far
    lower per-call overhead than ``linprog`` on tiny models;
``"auto"``
    dispatches to ``"simplex"`` for tiny all-finite-lower-bound models and to
    ``"highs"`` otherwise.

Adding a solver is one decorator::

    from repro.lp.backends import default_registry

    @default_registry.register("glpk", description="GLPK via swiglpk")
    def solve_glpk(model, *, warm_start=None, **options):
        ...
        return LPSolution(...)

after which ``model.solve(backend="glpk")`` and every higher layer
(:class:`~repro.core.lp_builder.GraphLP`, the analyzer, the CLI) can use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from .model import LPModel, LPSolution

__all__ = ["BackendSpec", "BackendRegistry", "default_registry", "auto_backend_choice"]


#: ``solve(model, *, warm_start=None, **options) -> LPSolution``
SolveFn = Callable[..., LPSolution]


@dataclass(frozen=True)
class BackendSpec:
    """A registered backend: its solve callable plus declared capabilities."""

    name: str
    solve: SolveFn
    description: str = ""
    supports_duals: bool = True
    supports_ranging: bool = False
    supports_warm_start: bool = False


class BackendRegistry:
    """Named collection of LP solver backends with a uniform solve protocol."""

    def __init__(self) -> None:
        self._specs: dict[str, BackendSpec] = {}

    # -- registration ---------------------------------------------------------

    def register(
        self,
        name: str,
        *,
        description: str = "",
        supports_duals: bool = True,
        supports_ranging: bool = False,
        supports_warm_start: bool = False,
        replace: bool = False,
    ) -> Callable[[SolveFn], SolveFn]:
        """Decorator registering ``fn`` as backend ``name``."""
        if not name:
            raise ValueError("backend name must be non-empty")

        def decorator(fn: SolveFn) -> SolveFn:
            if name in self._specs and not replace:
                raise ValueError(
                    f"backend {name!r} is already registered; pass replace=True to override"
                )
            self._specs[name] = BackendSpec(
                name=name,
                solve=fn,
                description=description,
                supports_duals=supports_duals,
                supports_ranging=supports_ranging,
                supports_warm_start=supports_warm_start,
            )
            return fn

        return decorator

    def unregister(self, name: str) -> None:
        """Remove backend ``name`` (KeyError if absent)."""
        del self._specs[name]

    # -- lookup ---------------------------------------------------------------

    def get(self, name: str) -> BackendSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ValueError(
                f"unknown LP backend {name!r}; registered backends: {self.names()}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[BackendSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    # -- solving ----------------------------------------------------------------

    def solve(
        self,
        model: LPModel,
        backend: str = "auto",
        *,
        warm_start: LPSolution | np.ndarray | None = None,
        **options: object,
    ) -> LPSolution:
        """Solve ``model`` with the named backend."""
        spec = self.get(backend)
        return spec.solve(model, warm_start=warm_start, **options)


#: The registry used by :meth:`LPModel.solve` and everything above it.
default_registry = BackendRegistry()


@default_registry.register(
    "highs",
    description="scipy.optimize.linprog with the HiGHS solver (sparse, scalable)",
    supports_duals=True,
)
def _solve_highs_backend(
    model: LPModel, *, warm_start: LPSolution | np.ndarray | None = None, **options: object
) -> LPSolution:
    from .scipy_backend import solve_highs

    return solve_highs(model, warm_start=warm_start, **options)


@default_registry.register(
    "simplex",
    description="dense two-phase simplex with lower-bound ranging (small models)",
    supports_duals=True,
    supports_ranging=True,
)
def _solve_simplex_backend(
    model: LPModel, *, warm_start: LPSolution | np.ndarray | None = None, **options: object
) -> LPSolution:
    from .simplex import solve_simplex

    return solve_simplex(model, warm_start=warm_start, **options)


# The native highspy bindings are optional; when importable they register as
# a fourth backend with a real simplex-basis warm start (ParametricLP's basis
# hand-off activates on supports_warm_start).  Environments without the
# package see an unchanged registry — no stub entry, no import error.
from .highspy_backend import HAVE_HIGHSPY

if HAVE_HIGHSPY:  # pragma: no cover - requires the optional highspy package

    @default_registry.register(
        "highspy",
        description="native HiGHS bindings with simplex basis warm starts",
        supports_duals=True,
        supports_warm_start=True,
    )
    def _solve_highspy_backend(
        model: LPModel, *, warm_start: LPSolution | np.ndarray | None = None, **options: object
    ) -> LPSolution:
        from .highspy_backend import solve_highspy

        return solve_highspy(model, warm_start=warm_start, **options)


# Below these sizes the dense simplex beats linprog's fixed per-call overhead
# (~2.5 ms on this hardware vs ~0.15 ms for an 8-variable model).
_AUTO_MAX_VARS = 64
_AUTO_MAX_ROWS = 256


def auto_backend_choice(model: LPModel) -> str:
    """The concrete backend ``"auto"`` dispatches ``model`` to."""
    if (
        model.num_vars <= _AUTO_MAX_VARS
        and model.num_constraints <= _AUTO_MAX_ROWS
        and all(np.isfinite(var.lb) for var in model.variables)
    ):
        return "simplex"
    return "highs"


# Backend-specific option names: their presence pins the auto dispatch so a
# tiny model doesn't route highs options into the simplex (or vice versa).
_HIGHS_ONLY_OPTIONS = frozenset({"method", "presolve"})
_SIMPLEX_ONLY_OPTIONS = frozenset({"options"})


@default_registry.register(
    "auto",
    description="dispatch to 'simplex' for tiny models, 'highs' otherwise",
    supports_duals=True,
)
def _solve_auto_backend(
    model: LPModel, *, warm_start: LPSolution | np.ndarray | None = None, **options: object
) -> LPSolution:
    wants_highs = _HIGHS_ONLY_OPTIONS & options.keys()
    wants_simplex = _SIMPLEX_ONLY_OPTIONS & options.keys()
    if wants_highs and wants_simplex:
        raise ValueError(
            f"options {sorted(wants_highs)} require 'highs' but {sorted(wants_simplex)} "
            "require 'simplex'; pick one backend explicitly"
        )
    if wants_highs:
        choice = "highs"
    elif wants_simplex:
        choice = "simplex"
    else:
        choice = auto_backend_choice(model)
    return default_registry.solve(model, backend=choice, warm_start=warm_start, **options)
