"""Parametric re-solving of one assembled LP under changing variable bounds.

The paper's three headline analyses are all "solve the same LP many times
while only variable *bounds* move":

* Algorithm 2 (critical latencies) sweeps the lower bound of the latency
  variable ``l`` over an interval;
* the ``T(L)`` / ``λ_L`` sensitivity curves evaluate the same sweep on a
  dense grid of latencies;
* the rank-placement loop (Algorithm 3) re-assigns the lower bounds of the
  per-pair ``l_{i,j}`` / ``G_{i,j}`` variables for every candidate mapping.

:class:`ParametricLP` is the one engine behind all three.  It owns a model
whose CSR lowering (:mod:`repro.lp.assembler`) is built once; every update
goes through bound-only mutators that bump just the model's bounds-revision
counter, so re-solves refresh two dense vectors instead of re-expanding the
constraint dictionaries.  When the selected backend declares
``supports_warm_start`` in the registry, the previous solution is handed to
it on every re-solve.

On top of the bound/solve primitives the engine exposes the shared convex
**tangent-envelope search** (:meth:`ParametricLP.tangent_envelope`): ``T(L)``
is convex piecewise linear in the lower bound ``L`` of a variable, and each
LP solve at ``L`` yields the tangent of the curve — the objective value and
the slope (the reduced cost of the variable).  Probing both interval ends and
recursing on tangent intersections discovers every linear segment with
``O(#breakpoints)`` solves:

* solve at both interval ends to obtain two tangents;
* if the tangents coincide, there is no breakpoint in between;
* otherwise their intersection ``x`` either lies on the curve (then ``x`` is
  the unique breakpoint in the open interval) or strictly below it (then
  recurse on ``[lo, x]`` and ``[x, hi]``).

This is the same complexity class as the paper's Algorithm 2 with exact
Gurobi ranging information, which the open backends do not provide.  Both
:func:`repro.core.critical_latency.find_critical_latencies` and
:class:`repro.core.parametric.BatchedSweep` are thin wrappers over this
search; the placement loop uses the bound/solve primitives directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .backends import BackendRegistry, default_registry
from .model import LPModel, LPSolution, Variable

__all__ = ["Tangent", "TangentEnvelope", "EnvelopeOverflowError", "ParametricLP"]

_REL_TOL = 1e-7
_ABS_TOL = 1e-9


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _ABS_TOL + _REL_TOL * max(abs(a), abs(b), 1.0)


@dataclass(frozen=True)
class Tangent:
    """The tangent of ``T(L)`` at one probed latency: value and slope."""

    L: float
    value: float
    slope: float

    @property
    def intercept(self) -> float:
        return self.value - self.slope * self.L

    def extrapolate(self, x: float) -> float:
        return self.value + self.slope * (x - self.L)


class EnvelopeOverflowError(RuntimeError):
    """Raised when an envelope exceeds the configured maximum piece count."""


@dataclass
class TangentEnvelope:
    """The outcome of one tangent-envelope search over ``[lo, hi]``.

    ``tangents`` holds one supporting line per linear segment discovered
    (probes that landed exactly on a kink are discarded — their slope is an
    arbitrary subgradient, and both adjacent segments are already
    represented).  ``breakpoints`` holds the kink positions discovered
    *during* the search, in discovery order and unrounded; wrappers sort,
    deduplicate and coalesce them as their interface requires.
    """

    tangents: list[Tangent]
    breakpoints: list[float]
    lo: float
    hi: float
    num_solves: int

    def value(self, x: float) -> float:
        """``T(x)`` reconstructed from the cached tangents (no LP solve)."""
        return max(t.extrapolate(x) for t in self.tangents)

    def segment_tangent(self, x: float) -> Tangent:
        """The tangent of the segment active at ``x``, re-anchored at ``x``.

        Equivalent to probing the LP at ``x`` (same value and slope to solver
        tolerance) but served from the cache.  At a breakpoint the steeper
        adjacent segment is returned, matching the reduced-cost convention of
        a fresh solve approached from the right.
        """
        best_value = self.value(x)
        tol = _ABS_TOL + _REL_TOL * max(abs(best_value), 1.0)
        active = max(
            (t for t in self.tangents if abs(t.extrapolate(x) - best_value) <= tol),
            key=lambda t: t.slope,
        )
        return Tangent(L=float(x), value=active.extrapolate(x), slope=active.slope)


class ParametricLP:
    """One assembled LP re-solved under bound-only updates.

    Parameters
    ----------
    model:
        The :class:`~repro.lp.model.LPModel` to own.  The objective must
        already be set; the engine never touches it (an objective change
        would force the assembler to refresh the cost vector on each solve).
    backend:
        Backend name from ``registry`` (default: the shared
        :data:`~repro.lp.backends.default_registry`).
    max_solves:
        Hard bound on the number of LP solves issued through this engine.
    warm_start:
        When true (default) and the backend's registry entry declares
        ``supports_warm_start``, every solve after the first receives the
        previous :class:`~repro.lp.model.LPSolution` as ``warm_start=``.
    """

    def __init__(
        self,
        model: LPModel,
        *,
        backend: str = "auto",
        max_solves: int = 10_000,
        warm_start: bool = True,
        registry: BackendRegistry | None = None,
    ) -> None:
        self.model = model
        self.backend = backend
        self.max_solves = max_solves
        self.num_solves = 0
        self.last_solution: LPSolution | None = None
        self._registry = registry if registry is not None else default_registry
        spec = self._registry.get(backend)  # fail fast on unknown backends
        self._hand_warm_start = warm_start and spec.supports_warm_start
        self._initial_structure_version = model.structure_version

    # -- bound-only updates ----------------------------------------------------

    @property
    def structure_rebuilds(self) -> int:
        """How many CSR re-assemblies this engine has forced (should stay 0).

        Counts structure-revision bumps of the model since the engine was
        created; bound-only updates leave it untouched.
        """
        return self.model.structure_version - self._initial_structure_version

    def _variable(self, var: Variable | int) -> Variable:
        index = var.index if isinstance(var, Variable) else int(var)
        return self.model.variables[index]

    def set_lower_bound(self, var: Variable | int, lb: float) -> Variable:
        """Replace the lower bound of one variable (bounds revision only)."""
        return self.model.set_var_lb(self._variable(var), float(lb))

    def set_lower_bounds(
        self, variables: Sequence[Variable | int], lbs: Iterable[float] | np.ndarray
    ) -> None:
        """Replace the lower bounds of many variables in one bounds revision.

        Used by the placement loop to push a whole per-pair latency/gap
        matrix into the model per candidate mapping.
        """
        indices = [
            var.index if isinstance(var, Variable) else int(var) for var in variables
        ]
        self.model.set_var_lbs(indices, lbs)

    # -- solving -----------------------------------------------------------------

    def solve(self, **options: object) -> LPSolution:
        """Re-solve the model, counting solves and handing off warm starts."""
        if self.num_solves >= self.max_solves:
            raise RuntimeError(
                f"exceeded {self.max_solves} LP solves while sweeping latencies"
            )
        if self._hand_warm_start and self.last_solution is not None:
            options.setdefault("warm_start", self.last_solution)
        solution = self._registry.solve(self.model, backend=self.backend, **options)
        self.num_solves += 1
        self.last_solution = solution
        return solution

    def probe(self, var: Variable | int, L: float) -> Tangent:
        """Set ``var >= L``, solve, and return the tangent of ``T(L)`` at ``L``."""
        variable = self.set_lower_bound(var, L)
        solution = self.solve()
        return Tangent(L=float(L), value=solution.objective, slope=solution.reduced_cost(variable))

    # -- the shared tangent-envelope search ---------------------------------------

    def tangent_envelope(
        self,
        var: Variable | int,
        lo: float,
        hi: float,
        *,
        max_pieces: int | None = None,
    ) -> TangentEnvelope:
        """Discover every linear segment of ``T(L)`` for ``L = lb(var)`` in ``[lo, hi]``.

        ``O(#breakpoints)`` LP solves; ``max_pieces`` (when given) bounds the
        number of distinct segment slopes the search may discover before an
        :class:`EnvelopeOverflowError` is raised.
        """
        if lo < 0 or hi <= lo:
            raise ValueError(f"invalid latency interval [{lo}, {hi}]")

        low = self.probe(var, lo)
        high = self.probe(var, hi)
        tangents = [low, high]
        breakpoints: list[float] = []
        slopes_seen = {round(low.slope, 9), round(high.slope, 9)}

        def guard() -> None:
            if max_pieces is not None and len(slopes_seen) > max_pieces:
                raise EnvelopeOverflowError(
                    f"latency sweep envelope has more than {max_pieces} "
                    "pieces; narrow the interval or raise max_pieces"
                )

        guard()

        # explicit worklist instead of recursion: breakpoints clustered at one
        # end of the interval would otherwise nest O(#segments) deep; the push
        # order keeps the probe sequence identical to the depth-first
        # left-to-right recursion the numerics were pinned against
        worklist = [(low, high)]
        while worklist:
            t_lo, t_hi = worklist.pop()
            if _close(t_lo.slope, t_hi.slope) and _close(t_lo.extrapolate(t_hi.L), t_hi.value):
                continue
            denom = t_hi.slope - t_lo.slope
            if abs(denom) <= _ABS_TOL:
                # same slope but different lines cannot happen for a convex
                # function probed on the same curve; treat as no breakpoint
                continue
            x = (t_lo.intercept - t_hi.intercept) / denom
            x = min(max(x, t_lo.L), t_hi.L)
            if _close(x, t_lo.L) or _close(x, t_hi.L):
                # numerical corner: the breakpoint coincides with an endpoint,
                # so both adjacent segments are already represented
                breakpoints.append(x)
                continue
            mid = self.probe(var, x)
            if _close(mid.value, t_lo.extrapolate(x)) and _close(mid.value, t_hi.extrapolate(x)):
                # x is the unique breakpoint between the two tangents; the
                # probe returned a supporting line at the kink (its slope can
                # be any subgradient, not a segment slope) — discard it
                breakpoints.append(x)
                continue
            tangents.append(mid)
            slopes_seen.add(round(mid.slope, 9))
            guard()
            worklist.append((mid, t_hi))
            worklist.append((t_lo, mid))

        return TangentEnvelope(
            tangents=tangents,
            breakpoints=breakpoints,
            lo=float(lo),
            hi=float(hi),
            num_solves=self.num_solves,
        )
