"""A self-contained dense two-phase simplex solver.

The paper relies on Gurobi; this module provides a small, dependency-free
alternative so that every quantity LLAMP reads off a solver — the optimal
objective, variable values, constraint duals, variable *reduced costs* and the
bound-ranging information behind Gurobi's ``SALBLow`` attribute (used by
Algorithm 2) — can be obtained from first principles and cross-checked against
the HiGHS backend.

The implementation is a textbook dense tableau simplex:

1. every variable is shifted by its lower bound so the working variables are
   non-negative; finite upper bounds become explicit ``<=`` rows;
2. inequality rows get slack/surplus variables, producing ``A x = b`` with
   ``b >= 0``;
3. phase one minimises the sum of artificial variables to find a basic
   feasible solution, phase two optimises the user objective;
4. Bland's rule is used throughout, which guarantees termination (at the cost
   of speed — this backend targets small and medium problems such as the
   paper's running examples, unit tests and the rank-placement LPs).

Dual values and reduced costs are recovered from the final tableau, and the
allowable decrease of each variable's lower bound (``SALBLow``) is obtained
with a ratio test on the corresponding tableau column.
"""

from __future__ import annotations

import numpy as np

from .model import (
    InfeasibleError,
    LPError,
    LPModel,
    LPSolution,
    Sense,
    Status,
    UnboundedError,
)

__all__ = ["solve_simplex", "SimplexOptions"]

_EPS = 1e-9


class SimplexOptions:
    """Tuning knobs of the dense simplex (exposed mainly for tests)."""

    def __init__(self, max_iterations: int = 20000, tolerance: float = 1e-9) -> None:
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self.max_iterations = max_iterations
        self.tolerance = tolerance


def solve_simplex(
    model: LPModel,
    *,
    warm_start: LPSolution | np.ndarray | None = None,
    options: SimplexOptions | None = None,
) -> LPSolution:
    """Solve ``model`` with the dense two-phase simplex.

    ``warm_start`` is accepted for protocol uniformity with the other
    backends but ignored: the tableau is rebuilt from scratch and phase one
    always starts from the artificial basis.
    """
    del warm_start  # the dense tableau is rebuilt on every call
    options = options or SimplexOptions()
    n_user = model.num_vars
    if n_user == 0:
        raise LPError("model has no variables")
    if n_user * (model.num_constraints + n_user) > 4_000_000:
        raise LPError(
            "the dense simplex backend is meant for small problems; "
            "use backend='highs' for large execution graphs"
        )

    sense_sign = 1.0 if model.sense is Sense.MIN else -1.0
    lb = np.array([v.lb for v in model.variables], dtype=np.float64)
    ub = np.array([v.ub for v in model.variables], dtype=np.float64)
    if np.any(~np.isfinite(lb)):
        raise LPError("the simplex backend requires finite lower bounds")

    # Build the row system over the *shifted* variables y = x - lb  (y >= 0).
    #   user constraint  expr >= 0:   a·x + c0 >= 0  ->  a·y >= -(c0 + a·lb)
    #   user constraint  expr <= 0:   a·y <= -(c0 + a·lb)
    #   finite upper bound x_i <= u:  y_i <= u - lb_i
    rows: list[np.ndarray] = []
    rhs: list[float] = []
    senses: list[str] = []  # ">=" or "<="
    row_is_user: list[int] = []  # index of the user constraint or -1 for a bound row

    for ci, constraint in enumerate(model.constraints):
        a = np.zeros(n_user, dtype=np.float64)
        for idx, coeff in constraint.expr.coeffs.items():
            a[idx] = coeff
        shift = constraint.expr.constant + float(a @ lb)
        rows.append(a)
        rhs.append(-shift)
        senses.append(constraint.sense)
        row_is_user.append(ci)

    for i in range(n_user):
        if np.isfinite(ub[i]):
            a = np.zeros(n_user, dtype=np.float64)
            a[i] = 1.0
            rows.append(a)
            rhs.append(ub[i] - lb[i])
            senses.append("<=")
            row_is_user.append(-1)

    m = len(rows)
    A_rows = np.vstack(rows) if m else np.zeros((0, n_user))
    b = np.asarray(rhs, dtype=np.float64)

    # objective over shifted variables
    c_user = np.zeros(n_user, dtype=np.float64)
    for idx, coeff in model.objective.coeffs.items():
        c_user[idx] = sense_sign * coeff
    obj_const = model.objective.constant + float(
        sum(coeff * lb[idx] for idx, coeff in model.objective.coeffs.items())
    )

    # add slack (for <=) / surplus (for >=) variables
    n_slack = m
    A = np.zeros((m, n_user + n_slack), dtype=np.float64)
    if m:
        A[:, :n_user] = A_rows
    for r in range(m):
        A[r, n_user + r] = 1.0 if senses[r] == "<=" else -1.0
    c = np.concatenate([c_user, np.zeros(n_slack)])

    # normalise to b >= 0 (remember which rows were flipped so that dual signs
    # can be restored afterwards)
    flipped = np.zeros(m, dtype=bool)
    for r in range(m):
        if b[r] < 0:
            A[r, :] *= -1.0
            b[r] *= -1.0
            flipped[r] = True

    n_total = n_user + n_slack
    tableau, basis, status = _phase_one(A, b, n_total, options)
    if status is Status.INFEASIBLE:
        raise InfeasibleError(f"LP {model.name!r} is infeasible")

    objective_row, iterations, status = _phase_two(tableau, basis, c, options)
    if status is Status.UNBOUNDED:
        raise UnboundedError(f"LP {model.name!r} is unbounded")

    # extract the solution over the shifted variables
    y = np.zeros(n_total, dtype=np.float64)
    for r, var in enumerate(basis):
        if var < n_total:
            y[var] = tableau[r, -1]
    x = y[:n_user] + lb
    objective = float(c @ y) * 1.0
    user_objective = sense_sign * objective + obj_const

    # reduced costs of the user variables (w.r.t. the minimisation objective of
    # the shifted problem); converting to d(user objective)/d(lower bound).
    reduced = objective_row[:n_user].copy()
    reduced[np.abs(reduced) < options.tolerance] = 0.0
    reduced_costs = sense_sign * reduced

    # duals of the user constraints: the reduced costs of their slack/surplus
    # columns carry the shadow prices (sign depends on the row sense).
    duals = np.zeros(model.num_constraints, dtype=np.float64)
    for r in range(m):
        ci = row_is_user[r]
        if ci < 0:
            continue
        slack_col = n_user + r
        value = objective_row[slack_col]
        if flipped[r]:
            value = -value
        duals[ci] = sense_sign * (value if senses[r] == "<=" else -value)

    lower_range = _lower_bound_ranging(
        tableau, basis, objective_row, n_user, n_total, lb, options
    )

    return LPSolution(
        status=Status.OPTIMAL,
        objective=user_objective,
        values=x,
        reduced_costs=reduced_costs,
        duals=duals,
        lower_range=lower_range,
        iterations=iterations,
        backend="simplex",
        _model=model,
    )


# ---------------------------------------------------------------------------
# simplex machinery
# ---------------------------------------------------------------------------

def _pivot(tableau: np.ndarray, basis: list[int], row: int, col: int) -> None:
    pivot_value = tableau[row, col]
    tableau[row, :] /= pivot_value
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > _EPS:
            tableau[r, :] -= tableau[r, col] * tableau[row, :]
    basis[row] = col


def _price_out(tableau: np.ndarray, basis: list[int], c: np.ndarray) -> np.ndarray:
    """Compute the reduced-cost row ``c_j - c_B B^-1 A_j`` for the current basis."""
    m, width = tableau.shape
    n_total = width - 1
    cb = np.array([c[var] if var < len(c) else 0.0 for var in basis])
    z = cb @ tableau[:, :n_total]
    return np.concatenate([c, np.zeros(n_total - len(c))]) - z


def _simplex_iterate(
    tableau: np.ndarray,
    basis: list[int],
    c_full: np.ndarray,
    options: SimplexOptions,
) -> tuple[np.ndarray, int, Status]:
    """Run primal simplex iterations until optimality (Bland's rule)."""
    m, width = tableau.shape
    n_total = width - 1
    iterations = 0
    while iterations < options.max_iterations:
        reduced = _price_out(tableau, basis, c_full)
        entering = -1
        for j in range(n_total):
            if reduced[j] < -options.tolerance and j not in basis:
                entering = j
                break
        if entering < 0:
            return reduced, iterations, Status.OPTIMAL
        # ratio test (Bland: smallest index among ties)
        leaving = -1
        best_ratio = np.inf
        for r in range(m):
            coeff = tableau[r, entering]
            if coeff > options.tolerance:
                ratio = tableau[r, -1] / coeff
                if ratio < best_ratio - options.tolerance or (
                    abs(ratio - best_ratio) <= options.tolerance
                    and (leaving < 0 or basis[r] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = r
        if leaving < 0:
            return reduced, iterations, Status.UNBOUNDED
        _pivot(tableau, basis, leaving, entering)
        iterations += 1
    raise LPError("simplex iteration limit exceeded")


def _phase_one(
    A: np.ndarray, b: np.ndarray, n_total: int, options: SimplexOptions
) -> tuple[np.ndarray, list[int], Status]:
    """Find a basic feasible solution using artificial variables."""
    m = A.shape[0]
    if m == 0:
        tableau = np.zeros((0, n_total + 1))
        return tableau, [], Status.OPTIMAL

    tableau = np.zeros((m, n_total + m + 1), dtype=np.float64)
    tableau[:, :n_total] = A
    tableau[:, -1] = b
    basis: list[int] = []
    for r in range(m):
        tableau[r, n_total + r] = 1.0
        basis.append(n_total + r)

    c_phase1 = np.concatenate([np.zeros(n_total), np.ones(m)])
    _, _, status = _simplex_iterate(tableau, basis, c_phase1, options)
    if status is not Status.OPTIMAL:
        return tableau, basis, Status.INFEASIBLE

    feasibility = sum(tableau[r, -1] for r in range(m) if basis[r] >= n_total)
    if feasibility > 1e-6:
        return tableau, basis, Status.INFEASIBLE

    # drive any artificial variable that is still basic (at value 0) out of the basis
    for r in range(m):
        if basis[r] >= n_total:
            pivot_col = -1
            for j in range(n_total):
                if abs(tableau[r, j]) > options.tolerance:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, basis, r, pivot_col)
    # drop the artificial columns
    keep = list(range(n_total)) + [tableau.shape[1] - 1]
    tableau = tableau[:, keep]
    return tableau, basis, Status.OPTIMAL


def _phase_two(
    tableau: np.ndarray,
    basis: list[int],
    c: np.ndarray,
    options: SimplexOptions,
) -> tuple[np.ndarray, int, Status]:
    """Optimise the user objective starting from a feasible basis."""
    if tableau.shape[0] == 0:
        # no constraints: every variable sits at its (shifted) lower bound 0
        reduced = c.copy()
        if np.any(reduced < -options.tolerance):
            return reduced, 0, Status.UNBOUNDED
        return reduced, 0, Status.OPTIMAL
    reduced, iterations, status = _simplex_iterate(tableau, basis, c, options)
    return reduced, iterations, status


def _lower_bound_ranging(
    tableau: np.ndarray,
    basis: list[int],
    objective_row: np.ndarray,
    n_user: int,
    n_total: int,
    lb: np.ndarray,
    options: SimplexOptions,
) -> np.ndarray:
    """Smallest lower bound for which the current optimal basis stays optimal.

    This mirrors Gurobi's ``SALBLow`` attribute, which Algorithm 2 of the
    paper uses to sweep critical latencies.  For a variable that is *basic*
    (not sitting on its bound) the bound can be lowered indefinitely without
    affecting the optimum, so the range is ``-inf``.  For a non-basic variable
    at its lower bound, lowering the bound by ``δ`` shifts every basic
    variable by ``+δ · B⁻¹ A_j`` (in shifted coordinates the variable stays at
    0 but the translation changes the RHS); the basis remains feasible while
    all basic variables stay non-negative, which a ratio test bounds.
    """
    m = tableau.shape[0]
    ranges = np.full(n_user, -np.inf, dtype=np.float64)
    if m == 0:
        return lb + ranges  # all -inf
    basic_set = set(basis)
    for j in range(n_user):
        if j in basic_set:
            ranges[j] = -np.inf
            continue
        column = tableau[:, j]
        max_decrease = np.inf
        for r in range(m):
            coeff = column[r]
            if coeff < -options.tolerance:
                # decreasing the bound by δ changes this basic value by +coeff·(-δ) = -coeff·δ…
                # feasibility requires value - coeff*δ' ≥ 0 with δ' the decrease
                max_decrease = min(max_decrease, tableau[r, -1] / (-coeff))
        ranges[j] = lb[j] - max_decrease if np.isfinite(max_decrease) else -np.inf
    return ranges
