"""Native HiGHS backend via ``highspy`` with simplex basis warm starts.

The scipy backend (:mod:`repro.lp.scipy_backend`) drives HiGHS through
:func:`scipy.optimize.linprog`, which rebuilds the solver instance on every
call and offers no basis hand-off.  When the ``highspy`` bindings are
available we can instead keep the optimal simplex basis from one solve and
seed the next with it — exactly the Gurobi warm-start trick the paper uses
for its latency sweeps (re-solving the same LP with a perturbed bound
typically re-optimises in a handful of dual simplex iterations).

The module is import-gated: ``highspy`` is an optional dependency, and
:data:`HAVE_HIGHSPY` reports whether the backend is usable.  Registration in
the default registry (see :mod:`repro.lp.backends`) only happens when the
import succeeds, so environments without the package see an unchanged
backend list.

The lowering reuses :mod:`repro.lp.assembler`: the cached CSR standard form
``min c^T x`` s.t. ``A_ub x <= b_ub`` maps directly onto a row-wise
``HighsLp`` with row bounds ``(-inf, b_ub)``.
"""

from __future__ import annotations

import numpy as np

from .assembler import assemble
from .model import (
    InfeasibleError,
    LPError,
    LPModel,
    LPSolution,
    Status,
    UnboundedError,
)

try:  # pragma: no cover - exercised only where highspy is installed
    import highspy
except ImportError:  # pragma: no cover
    highspy = None  # type: ignore[assignment]

#: True when the ``highspy`` bindings imported successfully.
HAVE_HIGHSPY = highspy is not None

__all__ = ["HAVE_HIGHSPY", "solve_highspy"]


def _build_highs_lp(assembled) -> "highspy.HighsLp":  # pragma: no cover
    n = len(assembled.c)
    lp = highspy.HighsLp()
    lp.num_col_ = n
    lp.col_cost_ = np.asarray(assembled.c, dtype=np.float64)
    lp.col_lower_ = np.asarray(assembled.lb, dtype=np.float64)
    lp.col_upper_ = np.asarray(assembled.ub, dtype=np.float64)
    if assembled.A_ub is not None:
        m = assembled.A_ub.shape[0]
        lp.num_row_ = m
        lp.row_lower_ = np.full(m, -np.inf)
        lp.row_upper_ = np.asarray(assembled.b_ub, dtype=np.float64)
        lp.a_matrix_.format_ = highspy.MatrixFormat.kRowwise
        lp.a_matrix_.start_ = assembled.A_ub.indptr.astype(np.int32)
        lp.a_matrix_.index_ = assembled.A_ub.indices.astype(np.int32)
        lp.a_matrix_.value_ = assembled.A_ub.data.astype(np.float64)
    else:
        lp.num_row_ = 0
    return lp


def solve_highspy(  # pragma: no cover - requires the optional highspy package
    model: LPModel,
    *,
    warm_start: LPSolution | np.ndarray | None = None,
    presolve: bool = True,
    time_limit: float | None = None,
) -> LPSolution:
    """Solve ``model`` with the native ``highspy`` bindings.

    ``warm_start`` accepts a previous :class:`LPSolution` produced by this
    backend: its stored simplex basis (attached as ``_highspy_basis``) seeds
    the new solve, so re-solves after a bounds change converge in a few dual
    simplex iterations.  A bare primal vector (or a solution from another
    backend) falls back to a primal crash start.  The returned solution
    carries the optimal basis for the next hand-off.
    """
    if highspy is None:
        raise LPError(
            "the 'highspy' package is not installed; use backend='highs' "
            "(scipy) instead"
        )
    if model.num_vars == 0:
        raise LPError("model has no variables")
    assembled = assemble(model)

    solver = highspy.Highs()
    solver.setOptionValue("output_flag", False)
    solver.setOptionValue("presolve", "on" if presolve else "off")
    if time_limit is not None:
        solver.setOptionValue("time_limit", float(time_limit))
    solver.passModel(_build_highs_lp(assembled))

    basis = getattr(warm_start, "_highspy_basis", None)
    if basis is not None:
        # A basis from a structurally identical prior solve: dual simplex
        # re-optimises from it directly.  HiGHS rejects mismatched sizes, in
        # which case we simply solve cold.
        solver.setBasis(basis)
    elif warm_start is not None:
        values = getattr(warm_start, "values", warm_start)
        values = np.asarray(values, dtype=np.float64)
        if values.shape == (model.num_vars,):
            sol = highspy.HighsSolution()
            sol.col_value = values
            solver.setSolution(sol)

    solver.run()
    status = solver.getModelStatus()
    if status == highspy.HighsModelStatus.kInfeasible:
        raise InfeasibleError(f"LP {model.name!r} is infeasible")
    if status == highspy.HighsModelStatus.kUnbounded:
        raise UnboundedError(f"LP {model.name!r} is unbounded")
    if status != highspy.HighsModelStatus.kOptimal:
        raise LPError(f"LP {model.name!r} failed: {solver.modelStatusToString(status)}")

    obj_sign = assembled.obj_sign
    hsol = solver.getSolution()
    values = np.asarray(hsol.col_value, dtype=np.float64)
    info = solver.getInfo()
    objective = obj_sign * float(info.objective_function_value) + assembled.obj_const

    # HiGHS duals are sensitivities of the *minimisation* objective; flip back
    # to the user's sense exactly like the scipy backend does.  col_dual is
    # the reduced cost w.r.t. the active bound — for the >=-rows LLAMP emits
    # the binding bound is the lower one, matching d(obj)/d(lb).
    reduced_costs = obj_sign * np.asarray(hsol.col_dual, dtype=np.float64)
    duals = None
    if model.num_constraints:
        duals = obj_sign * np.asarray(hsol.row_dual, dtype=np.float64)

    iterations = int(getattr(info, "simplex_iteration_count", 0) or 0)
    solution = LPSolution(
        status=Status.OPTIMAL,
        objective=objective,
        values=values,
        reduced_costs=reduced_costs,
        duals=duals,
        lower_range=None,
        iterations=iterations,
        backend="highspy",
        _model=model,
    )
    # Stash the optimal basis for the next warm-started solve.
    solution._highspy_basis = solver.getBasis()  # type: ignore[attr-defined]
    return solution
