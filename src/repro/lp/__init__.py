"""Linear programming layer: modelling objects and interchangeable backends."""

from .assembler import AssembledLP, assemble, assemble_rows
from .backends import BackendRegistry, BackendSpec, auto_backend_choice, default_registry
from .compiler import CompiledLP, compile_lp, compile_lp_from_batches
from .parametric import EnvelopeOverflowError, ParametricLP, Tangent, TangentEnvelope
from .model import (
    Constraint,
    InfeasibleError,
    LinearExpr,
    LPError,
    LPModel,
    LPSolution,
    Sense,
    Status,
    UnboundedError,
    Variable,
)
from .scipy_backend import solve_highs
from .simplex import SimplexOptions, solve_simplex

__all__ = [
    "LPModel",
    "LPSolution",
    "LinearExpr",
    "Variable",
    "Constraint",
    "Sense",
    "Status",
    "LPError",
    "InfeasibleError",
    "UnboundedError",
    "solve_highs",
    "solve_simplex",
    "SimplexOptions",
    "AssembledLP",
    "assemble",
    "assemble_rows",
    "CompiledLP",
    "compile_lp",
    "compile_lp_from_batches",
    "ParametricLP",
    "Tangent",
    "TangentEnvelope",
    "EnvelopeOverflowError",
    "BackendRegistry",
    "BackendSpec",
    "default_registry",
    "auto_backend_choice",
]
