#!/usr/bin/env python
"""ICON case study: collective algorithms and network topologies (Sections IV-1/2).

Reproduces, at laptop scale, the two analyses of the paper's case study:

* how switching ``MPI_Allreduce`` from recursive doubling to the ring
  algorithm changes ICON's latency sensitivity and tolerance (Fig. 10);
* how the fat-tree and dragonfly topologies compare when the per-wire latency
  grows because of heavier forward error correction (Fig. 11).

Run it with ``python examples/icon_collectives_case_study.py``.
"""

from __future__ import annotations

import numpy as np

from repro import LatencyAnalyzer, PIZ_DAINT
from repro.apps import icon
from repro.network import Dragonfly, FatTree, WireLatencyModel
from repro.schedgen import CollectiveAlgorithms

NRANKS = 16
STEPS = 10


def collective_study() -> None:
    print("=== Fig. 10: recursive doubling vs ring allreduce ===")
    for algorithm in ("recursive_doubling", "ring"):
        graph = icon.build(
            NRANKS,
            params=PIZ_DAINT,
            steps=STEPS,
            algorithms=CollectiveAlgorithms(allreduce=algorithm),
        )
        analyzer = LatencyAnalyzer(graph, PIZ_DAINT)
        report = analyzer.tolerance_report()
        print(f"{algorithm:>20s}: λ_L = {analyzer.latency_sensitivity():6.0f}   "
              f"ρ_L = {analyzer.l_ratio() * 100:5.2f} %   "
              f"5% tolerance ΔL = {report.delta_tolerance(0.05):8.1f} µs")


def topology_study() -> None:
    print("\n=== Fig. 11: fat tree vs dragonfly under growing wire latency ===")
    graph = icon.build(NRANKS, params=PIZ_DAINT, steps=STEPS)
    topologies = {
        "fat tree k=16": FatTree(k=16),
        "dragonfly (8,4,8)": Dragonfly(g=8, a=4, p=8),
    }
    for wire_ns in (274, 324, 374, 424):
        row = [f"wire {wire_ns:4d} ns:"]
        for name, topology in topologies.items():
            model = WireLatencyModel(wire_latency=wire_ns / 1000.0)
            effective_L = model.average_latency(topology, NRANKS)
            runtime = LatencyAnalyzer(graph, PIZ_DAINT.with_latency(effective_L)).predict_runtime()
            row.append(f"{name}: {runtime / 1e6:.4f} s")
        print("  ".join(row))
    print("(both topologies absorb the anticipated FEC-induced latency increase;"
          " dragonfly is marginally ahead thanks to its lower hop count)")


if __name__ == "__main__":
    collective_study()
    topology_study()
