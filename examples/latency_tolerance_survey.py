#!/usr/bin/env python
"""Survey the latency tolerance of every application skeleton (Fig. 1 / Fig. 9).

For each application of the paper's validation section this example builds the
execution graph, runs the measured-vs-predicted ΔL sweep (simulator vs LP) and
prints the 1/2/5 % tolerance together with the prediction error — a compact
version of the paper's Fig. 9 / Table II.

Run it with ``python examples/latency_tolerance_survey.py`` (about a minute).
"""

from __future__ import annotations

import numpy as np

from repro import CSCS_TESTBED
from repro.analysis import run_validation_sweep
from repro.apps import VALIDATION_APPS

NRANKS = 8
KNOBS = {
    "lulesh": dict(iterations=12),
    "hpcg": dict(iterations=8),
    "milc": dict(trajectories=2, cg_iterations=8),
    "icon": dict(steps=8),
    "lammps": dict(steps=20),
    "openmx": dict(scf_iterations=8),
    "cloverleaf": dict(steps=20),
}


def main() -> None:
    print(f"{'application':<12s} {'events':>8s} {'runtime[s]':>11s} "
          f"{'1% ΔL[µs]':>10s} {'2% ΔL[µs]':>10s} {'5% ΔL[µs]':>10s} {'RRMSE[%]':>9s}")
    for name, module in VALIDATION_APPS.items():
        graph = module.build(NRANKS, params=CSCS_TESTBED, **KNOBS[name])
        sweep = run_validation_sweep(
            graph, CSCS_TESTBED, app=name,
            delta_Ls=np.linspace(0.0, 100.0, 5), repetitions=1,
        )
        tol = sweep.tolerance
        print(f"{name:<12s} {graph.num_events:>8d} "
              f"{tol.baseline_runtime / 1e6:>11.3f} "
              f"{tol.delta_tolerance(0.01):>10.1f} "
              f"{tol.delta_tolerance(0.02):>10.1f} "
              f"{tol.delta_tolerance(0.05):>10.1f} "
              f"{sweep.rrmse * 100:>9.3f}")
    print("\n(orderings to compare with the paper: MILC is the least tolerant, "
          "ICON the most; all RRMSE values stay below 2 %)")


if __name__ == "__main__":
    main()
