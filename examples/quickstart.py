#!/usr/bin/env python
"""Quickstart: analyse the latency tolerance of a small MPI skeleton.

This example walks the complete LLAMP pipeline on the paper's running example
style of workload:

1. write an MPI-like program against the virtual MPI API,
2. turn it into an execution graph with Schedgen,
3. convert the graph into a linear program and query runtime, λ_L, ρ_L,
   latency tolerance and critical latencies,
4. cross-check the prediction against the LogGOPS discrete-event simulator.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import CSCS_TESTBED, LatencyAnalyzer, build_graph, run_program, simulate


def stencil_with_reduction(comm) -> None:
    """A toy iterative solver: halo exchange on a ring plus a global residual."""
    for iteration in range(20):
        comm.compute(500.0)                       # 500 µs of local work
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        recv = comm.irecv(left, 8192, tag=iteration)
        comm.send(right, 8192, tag=iteration)
        comm.compute(50.0)                        # overlaps the transfer
        comm.wait(recv)
        comm.allreduce(8)                         # residual norm


def main() -> None:
    params = CSCS_TESTBED          # L = 3 µs, o = 5 µs, G = 0.018 ns/B, S = 256 KiB
    nranks = 16

    # 1-2. record the program and build the execution graph
    program = run_program(stencil_with_reduction, nranks)
    graph = build_graph(program, params=params)
    print(f"execution graph: {graph.num_events} events, {graph.num_messages} messages")

    # 3. LLAMP analysis
    analyzer = LatencyAnalyzer(graph, params)
    runtime = analyzer.predict_runtime()
    print(f"predicted runtime at L = {params.L} µs : {runtime / 1e6:.4f} s")
    print(f"latency sensitivity λ_L               : {analyzer.latency_sensitivity():.0f}")
    print(f"latency ratio ρ_L                     : {analyzer.l_ratio() * 100:.2f} %")

    report = analyzer.tolerance_report()
    for degradation, absolute, delta in report.as_rows():
        print(f"{degradation * 100:3.0f}% tolerance: L = {absolute:8.1f} µs "
              f"(ΔL = {delta:8.1f} µs over the base latency)")

    critical = analyzer.critical_latencies(l_max=200.0)
    print(f"critical latencies in [{params.L}, 200] µs: "
          f"{[round(c, 2) for c in critical[:8]]}")

    # 4. cross-check against the simulator at +25 µs injected latency
    delta = 25.0
    predicted = analyzer.predict_runtime(delta)
    measured = simulate(graph, params, delta_L=delta).makespan
    error = abs(predicted - measured) / measured * 100
    print(f"ΔL = {delta} µs: predicted {predicted / 1e6:.4f} s, "
          f"simulated {measured / 1e6:.4f} s ({error:.3f}% apart)")


if __name__ == "__main__":
    main()
