#!/usr/bin/env python
"""Rank placement with pairwise sensitivities (Appendices I and J, Fig. 20).

Builds a communication pattern with an obvious locality structure (pairs of
ranks that exchange large messages), describes a two-node machine with cheap
intra-node links, and compares three mappings:

* the MPI default block mapping,
* a Scotch-like volume-greedy mapping,
* LLAMP's sensitivity-guided iterative refinement (Algorithm 3).

Run it with ``python examples/rank_placement.py``.
"""

from __future__ import annotations

from repro import CSCS_TESTBED, build_graph, run_program
from repro.network import ArchitectureGraph, block_mapping, round_robin_mapping
from repro.placement import llamp_placement, predicted_runtime, volume_greedy_placement


def pairwise_app(comm) -> None:
    """Ranks 2i and 2i+1 exchange big messages; everyone else only small ones."""
    partner = comm.rank ^ 1
    ring_next = (comm.rank + 2) % comm.size
    ring_prev = (comm.rank - 2) % comm.size
    for it in range(8):
        comm.compute(200.0)
        if partner < comm.size:
            comm.sendrecv(partner, 65_536, partner, 65_536, send_tag=it, recv_tag=it)
        comm.sendrecv(ring_next, 128, ring_prev, 128, send_tag=100 + it, recv_tag=100 + it)
        comm.allreduce(8)


def main() -> None:
    nranks = 8
    graph = build_graph(run_program(pairwise_app, nranks), params=CSCS_TESTBED)
    arch = ArchitectureGraph(
        num_nodes=4, processes_per_node=2,
        intra_node_latency=0.3, inter_node_latency=CSCS_TESTBED.L,
    )

    mappings = {
        "block": block_mapping(nranks, arch),
        "round robin": round_robin_mapping(nranks, arch),
        "volume greedy (Scotch-like)": volume_greedy_placement(graph, arch),
    }
    print(f"{'mapping':<30s} {'rank -> node':<28s} {'predicted runtime [ms]':>22s}")
    for name, mapping in mappings.items():
        runtime = predicted_runtime(graph, CSCS_TESTBED, arch, mapping)
        print(f"{name:<30s} {str(mapping):<28s} {runtime / 1e3:>22.3f}")

    result = llamp_placement(
        graph, CSCS_TESTBED, arch,
        initial_mapping=round_robin_mapping(nranks, arch), max_iterations=10,
    )
    print(f"{'LLAMP (Algorithm 3)':<30s} {str(result.mapping):<28s} "
          f"{result.predicted_runtime / 1e3:>22.3f}")
    print(f"\nLLAMP refinement: {len(result.swaps)} swaps, "
          f"{result.improvement * 100:.1f}% improvement over its starting point")


if __name__ == "__main__":
    main()
